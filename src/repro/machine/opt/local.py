"""Block-local optimizations: constant folding/propagation, copy
propagation, algebraic simplification and common-subexpression
elimination by local value numbering.

The ``keep`` barrier is opaque: its result gets a fresh, unknowable
value number, so the optimizer can never "lose all information about how
the resulting value was computed ... discarding the value and
subsequently recomputing it" — the paper's condition (2).
"""

from __future__ import annotations

from ..ir import BIN_OPS, COMMUTATIVE, Inst, IRFunc, Vreg, basic_blocks

_MASK = 0xFFFFFFFF


def _signed(x: int) -> int:
    x &= _MASK
    return x - (1 << 32) if x >= 1 << 31 else x


def eval_bin(subop: str, a: int, b: int) -> int | None:
    """Evaluate a binary subop on 32-bit values (None: cannot fold)."""
    sa, sb = _signed(a), _signed(b)
    try:
        if subop == "add":
            return (a + b) & _MASK
        if subop == "sub":
            return (a - b) & _MASK
        if subop == "mul":
            return (a * b) & _MASK
        if subop == "div":
            if sb == 0:
                return None
            q = abs(sa) // abs(sb)
            return (q if (sa < 0) == (sb < 0) else -q) & _MASK
        if subop == "mod":
            if sb == 0:
                return None
            q = abs(sa) // abs(sb)
            q = q if (sa < 0) == (sb < 0) else -q
            return (sa - q * sb) & _MASK
        if subop == "and":
            return a & b
        if subop == "or":
            return a | b
        if subop == "xor":
            return a ^ b
        if subop == "shl":
            return (a << (b & 31)) & _MASK
        if subop == "shr":
            return (sa >> (b & 31)) & _MASK
        if subop == "shru":
            return (a >> (b & 31)) & _MASK
        if subop == "eq":
            return int(a == b)
        if subop == "ne":
            return int(a != b)
        if subop == "lt":
            return int(sa < sb)
        if subop == "le":
            return int(sa <= sb)
        if subop == "gt":
            return int(sa > sb)
        if subop == "ge":
            return int(sa >= sb)
        if subop == "ult":
            return int(a < b)
        if subop == "ule":
            return int(a <= b)
        if subop == "ugt":
            return int(a > b)
        if subop == "uge":
            return int(a >= b)
    except (OverflowError, ZeroDivisionError):
        return None
    return None


def eval_un(subop: str, a: int) -> int:
    if subop == "neg":
        return (-a) & _MASK
    if subop == "bnot":
        return (~a) & _MASK
    if subop == "not":
        return int(a == 0)
    if subop == "sext8":
        v = a & 0xFF
        return (v - 0x100 if v >= 0x80 else v) & _MASK
    if subop == "zext8":
        return a & 0xFF
    if subop == "sext16":
        v = a & 0xFFFF
        return (v - 0x10000 if v >= 0x8000 else v) & _MASK
    if subop == "zext16":
        return a & 0xFFFF
    raise ValueError(subop)


class _BlockState:
    """Value-numbering state, reset at each basic block."""

    def __init__(self):
        self.version: dict[Vreg, int] = {}
        self.consts: dict[tuple[Vreg, int], int] = {}
        self.copies: dict[tuple[Vreg, int], tuple[Vreg, int]] = {}
        self.exprs: dict[tuple, tuple[Vreg, int]] = {}

    def ver(self, v: Vreg) -> int:
        return self.version.get(v, 0)

    def bump(self, v: Vreg) -> None:
        self.version[v] = self.ver(v) + 1

    def const_of(self, v: Vreg) -> int | None:
        return self.consts.get((v, self.ver(v)))

    def resolve_copy(self, v: Vreg) -> Vreg:
        """Follow the copy chain while the sources are still current."""
        seen = set()
        while True:
            entry = self.copies.get((v, self.ver(v)))
            if entry is None or v in seen:
                return v
            src, src_ver = entry
            if self.ver(src) != src_ver:
                return v
            seen.add(v)
            v = src


def run(fn: IRFunc) -> bool:
    """Apply local optimizations in place; return True if changed."""
    changed = False
    for block in basic_blocks(fn):
        state = _BlockState()
        for idx in block:
            inst = fn.insts[idx]
            changed |= _visit(fn, idx, inst, state)
    return changed


def _visit(fn: IRFunc, idx: int, inst: Inst, state: _BlockState) -> bool:
    changed = False
    # Copy-propagate all register arguments first (not through keep dst).
    if inst.op not in ("label", "jmp"):
        new_args = tuple(state.resolve_copy(a) for a in inst.args)
        if new_args != inst.args:
            inst.args = new_args
            changed = True

    if inst.op == "const":
        if inst.dst is not None:
            state.bump(inst.dst)
            state.consts[(inst.dst, state.ver(inst.dst))] = inst.imm or 0
        return changed

    if inst.op == "mov":
        src = inst.args[0]
        cval = state.const_of(src)
        assert inst.dst is not None
        state.bump(inst.dst)
        if cval is not None:
            fn.insts[idx] = Inst("const", dst=inst.dst, imm=cval)
            state.consts[(inst.dst, state.ver(inst.dst))] = cval
            return True
        state.copies[(inst.dst, state.ver(inst.dst))] = (src, state.ver(src))
        return changed

    if inst.op == "un":
        a = inst.args[0]
        ca = state.const_of(a)
        assert inst.dst is not None
        if ca is not None:
            value = eval_un(inst.subop, ca)
            state.bump(inst.dst)
            fn.insts[idx] = Inst("const", dst=inst.dst, imm=value)
            state.consts[(inst.dst, state.ver(inst.dst))] = value
            return True
        changed |= _try_cse(fn, idx, inst, state, ("un", inst.subop, a, state.ver(a)))
        return changed

    if inst.op == "bin":
        return _visit_bin(fn, idx, inst, state) or changed

    if inst.op in ("la", "frame"):
        # Pure functions of their symbol: CSE-able.
        assert inst.dst is not None
        return _try_cse(fn, idx, inst, state, (inst.op, inst.symbol)) or changed

    # Everything else defines an unknowable value (loads, calls, keep)
    # or has no destination.
    if inst.dst is not None:
        state.bump(inst.dst)
    return changed


def _visit_bin(fn: IRFunc, idx: int, inst: Inst, state: _BlockState) -> bool:
    a, b = inst.args
    ca, cb = state.const_of(a), state.const_of(b)
    assert inst.dst is not None
    if ca is not None and cb is not None:
        value = eval_bin(inst.subop, ca, cb)
        if value is not None:
            state.bump(inst.dst)
            fn.insts[idx] = Inst("const", dst=inst.dst, imm=value)
            state.consts[(inst.dst, state.ver(inst.dst))] = value
            return True
    # Algebraic identities.
    simplified = _algebraic(fn, idx, inst, state, a, b, ca, cb)
    if simplified:
        return True
    key_a = (a, state.ver(a)) if ca is None else ("c", ca)
    key_b = (b, state.ver(b)) if cb is None else ("c", cb)
    if inst.subop in COMMUTATIVE and repr(key_b) < repr(key_a):
        key_a, key_b = key_b, key_a
    return _try_cse(fn, idx, inst, state, ("bin", inst.subop, key_a, key_b))


def _algebraic(fn: IRFunc, idx: int, inst: Inst, state: _BlockState,
               a, b, ca, cb) -> bool:
    subop = inst.subop
    dst = inst.dst
    assert dst is not None

    def as_mov(src) -> bool:
        state.bump(dst)
        fn.insts[idx] = Inst("mov", dst=dst, args=(src,))
        state.copies[(dst, state.ver(dst))] = (src, state.ver(src))
        return True

    def as_const(value: int) -> bool:
        state.bump(dst)
        fn.insts[idx] = Inst("const", dst=dst, imm=value & _MASK)
        state.consts[(dst, state.ver(dst))] = value & _MASK
        return True

    if subop == "add":
        if cb == 0:
            return as_mov(a)
        if ca == 0:
            return as_mov(b)
    elif subop == "sub":
        if cb == 0:
            return as_mov(a)
        if a == b and state.ver(a) == state.ver(b):
            return as_const(0)
    elif subop == "mul":
        if cb == 1:
            return as_mov(a)
        if ca == 1:
            return as_mov(b)
        if cb == 0 or ca == 0:
            return as_const(0)
        # mul-by-power-of-two becomes a shift in opt/strength.py, which
        # can insert the shift-amount constant it needs.
    elif subop in ("div",) and cb == 1:
        return as_mov(a)
    return False


def _try_cse(fn: IRFunc, idx: int, inst: Inst, state: _BlockState, key) -> bool:
    assert inst.dst is not None
    prev = state.exprs.get(key)
    if prev is not None:
        src, src_ver = prev
        if state.ver(src) == src_ver and src != inst.dst:
            state.bump(inst.dst)
            fn.insts[idx] = Inst("mov", dst=inst.dst, args=(src,))
            state.copies[(inst.dst, state.ver(inst.dst))] = (src, state.ver(src))
            return True
    state.bump(inst.dst)
    state.exprs[key] = (inst.dst, state.ver(inst.dst))
    return False
