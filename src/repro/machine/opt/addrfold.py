"""Address-arithmetic reassociation — the paper's motivating
"pointer-disguising" transformation.

For ``p[i - 1000]`` the lowered IR is::

    t1 = sub i, #1000
    t2 = add p, t1
    ... load [t2]

This pass reassociates the constant against the pointer::

    t3 = sub p, #1000      ; t3 points OUTSIDE the object!
    t2 = add t3, i

which is profitable when the constant-adjusted pointer is loop-invariant
or frees ``i``'s computation, and is precisely "a conventional C
compiler may replace a final reference p[i-1000] to the heap character
pointer p by the sequence p = p - 1000; ... p[i] ...".  If ``p`` is dead
afterwards, the register allocator reuses its register for ``t3`` and no
recognizable pointer to the object remains — the GC-safety failure the
paper opens with.

A KEEP_LIVE between the arithmetic and the dereference does not inhibit
this pass (the paper: the goal is "to convince the compiler to preserve
some values longer ... rather than to suppress specific optimizations");
it keeps the base register alive instead, which is what restores safety.
"""

from __future__ import annotations

from ..ir import Inst, IRFunc, Vreg, basic_blocks


def run(fn: IRFunc) -> bool:
    changed = False
    # Live-range ends let us overwrite a dead pointer in place — the
    # paper's literal "p = p - 1000".  (Import here to avoid a cycle.)
    from ..regalloc import build_intervals
    intervals, _ = build_intervals(fn)
    for block in basic_blocks(fn):
        # Per-block maps: vreg -> defining inst index (latest), use counts.
        def_at: dict[Vreg, int] = {}
        def_count: dict[Vreg, int] = {}
        use_count: dict[Vreg, int] = {}
        for idx in block:
            inst = fn.insts[idx]
            for a in inst.args:
                use_count[a] = use_count.get(a, 0) + 1
            if inst.dst is not None:
                def_at[inst.dst] = idx
                def_count[inst.dst] = def_count.get(inst.dst, 0) + 1
        # Global use counts matter for "single use" safety.
        global_uses: dict[Vreg, int] = {}
        for inst in fn.insts:
            for a in inst.args:
                global_uses[a] = global_uses.get(a, 0) + 1

        for idx in block:
            inst = fn.insts[idx]
            if inst.op != "bin" or inst.subop != "add" or len(inst.args) != 2:
                continue
            if inst.text == "reassoc":  # already rewritten; the transform
                continue                 # is its own inverse otherwise
            p, t1 = inst.args
            rewritten = _try_reassoc(fn, idx, inst, p, t1, def_at, def_count,
                                     global_uses, intervals)
            if not rewritten:
                rewritten = _try_reassoc(fn, idx, inst, t1, p, def_at,
                                         def_count, global_uses, intervals)
            changed |= rewritten
            if rewritten:
                # The in-place variant invalidates the analysis maps;
                # restart (the pipeline iterates to a fixpoint anyway).
                return True
    return changed


def _try_reassoc(fn: IRFunc, idx: int, inst: Inst, p: Vreg, t1: Vreg,
                 def_at: dict[Vreg, int], def_count: dict[Vreg, int],
                 global_uses: dict[Vreg, int], intervals=None) -> bool:
    """Rewrite add(p, t1) where t1 = sub(i, c)/add(i, c) into
    add(sub/add(p, c), i), in place (two instructions)."""
    t1_def_idx = def_at.get(t1)
    if t1_def_idx is None or t1_def_idx >= idx:
        return False
    t1_def = fn.insts[t1_def_idx]
    if t1_def.op != "bin" or t1_def.subop not in ("sub", "add"):
        return False
    if global_uses.get(t1, 0) != 1 or def_count.get(t1, 0) != 1:
        return False
    i_val, c_val = t1_def.args
    c_def_idx = def_at.get(c_val)
    if c_def_idx is None or fn.insts[c_def_idx].op != "const":
        return False
    if global_uses.get(c_val, 0) != 1:
        return False
    # Don't reassociate additions with tiny constants: those fold into
    # addressing modes anyway, and rewriting them loses that.
    c_imm = fn.insts[c_def_idx].imm or 0
    if t1_def.subop == "add" and -64 <= _sig(c_imm) <= 64:
        return False
    # Check that i_val and p are not redefined between t1's def and the add.
    for k in range(t1_def_idx + 1, idx):
        dst = fn.insts[k].dst
        if dst is not None and dst in (i_val, p, c_val):
            return False
    # Rewrite:  t1 = sub(i, c)  ->  t1 = sub(p, c)   (pointer adjusted)
    #           t2 = add(p, t1) ->  t2 = add(t1, i)
    p_iv = intervals.get(p) if intervals is not None else None
    # The in-place variant overwrites p at t1's definition point, so it
    # is only sound when the index operand is a different register (for
    # p[p - c] both operands of the final add would read the adjusted
    # pointer) and nothing between the two instructions still reads the
    # original p.
    in_place_ok = (
        i_val != p
        and inst.dst != p
        and not any(p in fn.insts[k].args
                    for k in range(t1_def_idx + 1, idx)))
    if p_iv is not None and p_iv.end <= 2 * idx and in_place_ok:
        # p is dead after this address computation: overwrite it in
        # place, the paper's literal "p = p - 1000; ... p[i]".  Between
        # the adjustment and the use, no register holds a pointer into
        # the object — the GC-safety failure.  (With KEEP_LIVE the base's
        # live range extends past this point, so this branch cannot
        # trigger on annotated code.)
        fn.insts[t1_def_idx] = Inst("bin", dst=p, subop=t1_def.subop,
                                    args=(p, c_val), text="reassoc")
        fn.insts[idx] = Inst("bin", dst=inst.dst, subop="add",
                             args=(p, i_val), text="reassoc")
        return True
    fn.insts[t1_def_idx] = Inst("bin", dst=t1, subop=t1_def.subop,
                                args=(p, c_val), text="reassoc")
    fn.insts[idx] = Inst("bin", dst=inst.dst, subop="add",
                         args=(t1, i_val), text="reassoc")
    return True


def _sig(x: int) -> int:
    x &= 0xFFFFFFFF
    return x - (1 << 32) if x >= 1 << 31 else x
