"""Machine cost models for the three test machines of the paper:
a Weitek-processor SPARCstation 2 (SunOS 4.1.4), a SPARCstation 10
(Solaris 2.5), and a Pentium 90 (Linux 1.81).

The models differ in per-instruction cycle costs and, crucially for the
Pentium, in the number of allocatable registers — the paper observes
that if KEEP_LIVE overhead were dominated by register pressure, the
register-starved Pentium would have degraded far more than the SPARCs
(it did not), which our models let us reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class MachineModel:
    name: str
    num_regs: int  # allocatable general-purpose registers
    load_cycles: int = 1
    store_cycles: int = 1
    mul_cycles: int = 3
    div_cycles: int = 12
    branch_cycles: int = 1
    taken_branch_extra: int = 0
    call_cycles: int = 4
    alu_cycles: int = 1
    builtin_check_cycles: int = 18  # GC_same_obj page-table lookup cost

    def cycles_for(self, op: str, taken: bool = False) -> int:
        if op in ("ld",):
            return self.load_cycles
        if op in ("st",):
            return self.store_cycles
        if op == "mul":
            return self.mul_cycles
        if op in ("div", "mod"):
            return self.div_cycles
        if op in ("jmp", "bz", "bnz"):
            return self.branch_cycles + (self.taken_branch_extra if taken else 0)
        if op in ("call", "callr", "ret"):
            return self.call_cycles
        if op in ("label", "keepsafe", "nop"):
            return 0
        return self.alu_cycles


# SPARCstation 2: ~40 MHz single-issue SPARC v7; loads take an extra
# cycle, multiplies are slow (no integer multiply until v8).
SPARCSTATION_2 = MachineModel(
    name="SPARCstation 2", num_regs=16,
    load_cycles=2, store_cycles=3, mul_cycles=8, div_cycles=24,
    branch_cycles=1, taken_branch_extra=1, call_cycles=6,
    builtin_check_cycles=24,
)

# SPARCstation 10: SuperSPARC, faster memory pipeline and hardware
# integer multiply.
SPARC_10 = MachineModel(
    name="SPARCstation 10", num_regs=16,
    load_cycles=1, store_cycles=1, mul_cycles=4, div_cycles=18,
    branch_cycles=1, taken_branch_extra=0, call_cycles=4,
    builtin_check_cycles=18,
)

# Pentium 90: two-operand x86 with only a handful of allocatable
# registers; good memory system for its day.
PENTIUM_90 = MachineModel(
    name="Pentium 90", num_regs=6,
    load_cycles=1, store_cycles=1, mul_cycles=9, div_cycles=40,
    branch_cycles=1, taken_branch_extra=1, call_cycles=3,
    builtin_check_cycles=14,
)

MODELS = {
    "ss2": SPARCSTATION_2,
    "ss10": SPARC_10,
    "p90": PENTIUM_90,
}
