"""Three-address intermediate representation.

The IR is a flat instruction list per function with labels; optimizer
passes build basic blocks on demand.  Values live in virtual registers
(:class:`Vreg`); memory-resident locals (address-taken, aggregates, or
everything in ``-g`` mode) live in named frame slots.

``keep`` is the KEEP_LIVE pseudo-instruction, the IR analogue of the
paper's empty gcc ``asm``: it ties ``dst`` to ``src`` (same location),
keeps ``base`` live until this point, and is opaque to every optimizer
pass — no forwarding, no folding, no dead-code elimination across it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace

BIN_OPS = frozenset(
    "add sub mul div mod and or xor shl shr shru "
    "eq ne lt le gt ge ult ule ugt uge".split()
)
UN_OPS = frozenset("neg not bnot".split())

COMMUTATIVE = frozenset("add mul and or xor eq ne".split())


@dataclass(frozen=True)
class Vreg:
    """A virtual register.  ``hint`` is a human-readable origin tag."""

    id: int
    hint: str = ""

    def __repr__(self) -> str:
        return f"%{self.id}" + (f"({self.hint})" if self.hint else "")


@dataclass
class Inst:
    """One IR instruction.

    op: const | mov | un | bin | load | store | la | frame | label |
        jmp | bz | bnz | call | callr | ret | keep | comment
    """

    op: str
    dst: Vreg | None = None
    args: tuple = ()
    # op-specific payload:
    imm: int | None = None  # const
    subop: str = ""  # bin/un operation name
    width: int = 4  # load/store width
    signed: bool = True  # load sign extension
    symbol: str = ""  # la/frame/call/jmp/bz/bnz target
    text: str = ""  # comment payload

    def uses(self) -> tuple[Vreg, ...]:
        return self.args

    def replace_args(self, mapping: dict[Vreg, Vreg]) -> None:
        self.args = tuple(mapping.get(a, a) for a in self.args)

    def __repr__(self) -> str:
        parts = [self.op]
        if self.subop:
            parts.append(self.subop)
        if self.dst is not None:
            parts.append(f"{self.dst!r} <-")
        parts.extend(repr(a) for a in self.args)
        if self.imm is not None:
            parts.append(f"#{self.imm}")
        if self.symbol:
            parts.append(self.symbol)
        return " ".join(parts)


@dataclass
class FrameSlot:
    name: str
    size: int
    align: int = 4
    offset: int = 0  # assigned at frame layout time (negative from fp)


@dataclass
class IRFunc:
    name: str
    params: list[Vreg] = field(default_factory=list)
    insts: list[Inst] = field(default_factory=list)
    slots: dict[str, FrameSlot] = field(default_factory=dict)
    frame_size: int = 0
    _vreg_counter: itertools.count = field(default_factory=itertools.count)
    _label_counter: itertools.count = field(default_factory=itertools.count)

    # -- builders ---------------------------------------------------------

    def new_vreg(self, hint: str = "") -> Vreg:
        return Vreg(next(self._vreg_counter), hint)

    def new_label(self, hint: str = "L") -> str:
        return f".{self.name}_{hint}{next(self._label_counter)}"

    def emit(self, inst: Inst) -> Inst:
        self.insts.append(inst)
        return inst

    def add_slot(self, name: str, size: int, align: int = 4) -> FrameSlot:
        slot = FrameSlot(name, size, align)
        self.slots[name] = slot
        return slot

    def layout_frame(self) -> int:
        """Assign slot offsets (negative, fp-relative); return frame size."""
        offset = 0
        for slot in self.slots.values():
            offset = (offset + slot.size + slot.align - 1) // slot.align * slot.align
            slot.offset = -offset
        self.frame_size = (offset + 7) // 8 * 8
        return self.frame_size

    # -- queries ------------------------------------------------------------

    def labels(self) -> dict[str, int]:
        return {i.symbol: n for n, i in enumerate(self.insts) if i.op == "label"}

    def __repr__(self) -> str:
        body = "\n".join(f"  {i!r}" for i in self.insts)
        return f"func {self.name}({', '.join(map(repr, self.params))}):\n{body}"


@dataclass
class GlobalVar:
    name: str
    size: int
    align: int = 4
    init_bytes: bytes = b""
    address: int = 0  # assigned at link time


@dataclass
class IRProgram:
    functions: dict[str, IRFunc] = field(default_factory=dict)
    globals: dict[str, GlobalVar] = field(default_factory=dict)
    string_pool: dict[str, str] = field(default_factory=dict)  # text -> symbol

    def intern_string(self, text: str) -> str:
        symbol = self.string_pool.get(text)
        if symbol is None:
            symbol = f"__str{len(self.string_pool)}"
            self.string_pool[text] = symbol
            data = text.encode("latin-1") + b"\0"
            self.globals[symbol] = GlobalVar(symbol, len(data), 1, data)
        return symbol


def basic_blocks(fn: IRFunc) -> list[list[int]]:
    """Partition instruction indices into basic blocks."""
    leaders = {0}
    label_at = fn.labels()
    for n, inst in enumerate(fn.insts):
        if inst.op in ("jmp", "bz", "bnz", "ret"):
            leaders.add(n + 1)
        if inst.op in ("jmp", "bz", "bnz") and inst.symbol in label_at:
            leaders.add(label_at[inst.symbol])
        if inst.op == "label":
            leaders.add(n)
    ordered = sorted(x for x in leaders if x < len(fn.insts))
    blocks: list[list[int]] = []
    for i, start in enumerate(ordered):
        end = ordered[i + 1] if i + 1 < len(ordered) else len(fn.insts)
        blocks.append(list(range(start, end)))
    return blocks
