"""End-to-end compilation driver.

Reproduces the paper's build matrix as configurations:

=============  =========  ==========  =======================================
config          optimizer  annotation  paper column
=============  =========  ==========  =======================================
``O0``          off*       none        "-O0": register lowering, no opt passes
``O``           on         none        the ``-O``/``-O2`` baseline (unsafe!)
``O_safe``      on         KEEP_LIVE   "-O, safe"
``g``           off        none        "-g" (fully debuggable, hence GC-safe)
``g_checked``   off        checked     "-g, checked" (GC_same_obj calls)
=============  =========  ==========  =======================================

(*) ``O0`` uses the optimizing (register-based) lowering but runs an
empty pass pipeline — the same object code shape as ``O`` without any
transformation, which makes it the natural middle rung for differential
testing: a divergence between ``O0`` and ``g`` implicates lowering or
register allocation, while a divergence between ``O`` and ``O0``
implicates an optimizer pass.

Use :func:`compile_source` + :class:`repro.machine.vm.VM` to run, or the
convenience :func:`run_source`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..cfront.cpp import preprocess
from ..cfront.parser import parse
from ..cfront.typecheck import typecheck
from ..exec import cache as exec_cache
from ..obs import runtime as obs_runtime
from ..core.annotate import AnnotateOptions, Annotator
from ..gc.collector import Collector
from ..resil import inject as resil_inject
from .asm import MProgram
from .codegen import generate_program
from .ir import IRProgram
from .lower import lower_unit
from .models import MachineModel, SPARC_10
from .opt import DEFAULT_PASSES, optimize
from .vm import VM, RunResult

CONFIGS = ("O0", "O", "O_safe", "g", "g_checked")


@dataclass
class CompileConfig:
    """One cell of the paper's build matrix."""

    optimize: bool = True
    safe: bool = False  # KEEP_LIVE annotation (GC-safety mode)
    checked: bool = False  # GC_same_obj annotation (debug checking mode)
    model: MachineModel = SPARC_10
    passes: tuple[str, ...] = DEFAULT_PASSES
    annotate_options: AnnotateOptions | None = None
    # The paper's naive KEEP_LIVE implementation: "a call to an external
    # function whose implementation is unavailable to the compiler ...
    # but which actually just returns its first argument.  This
    # implementation ... is, of course, terribly inefficient."  When set,
    # safe-mode KEEP_LIVE lowers to a real call instead of the zero-cost
    # barrier, so the difference is measurable (ablation benchmark).
    naive_keep_live: bool = False
    run_cpp: bool = True
    include_dirs: list[str] = field(default_factory=list)

    @staticmethod
    def named(name: str, model: MachineModel = SPARC_10) -> "CompileConfig":
        if name == "O0":
            return CompileConfig(optimize=True, passes=(), model=model)
        if name == "O":
            return CompileConfig(optimize=True, model=model)
        if name == "O_safe":
            return CompileConfig(optimize=True, safe=True, model=model)
        if name == "g":
            return CompileConfig(optimize=False, model=model)
        if name == "g_checked":
            return CompileConfig(optimize=False, checked=True, model=model)
        raise ValueError(f"unknown config {name!r} (expected one of {CONFIGS})")


@dataclass
class CompiledProgram:
    asm: MProgram
    ir: IRProgram
    config: CompileConfig
    keep_lives: int = 0

    @property
    def code_size(self) -> int:
        return self.asm.code_size()

    def render_asm(self) -> str:
        return self.asm.render()


def compile_source(source: str, config: CompileConfig | None = None) -> CompiledProgram:
    """Compile C source through the full pipeline for one configuration.

    When a :mod:`repro.exec.cache` compile cache is installed, the
    linked :class:`CompiledProgram` is memoized under the SHA-256 of
    (source, config fingerprint, code-version salt); a verified hit
    skips the whole pipeline and unpickles a fresh, unaliased program.
    """
    config = config or CompileConfig()
    resil_inject.compile_checkpoint()  # chaos seam: mid-pipeline stalls
    cache = exec_cache.active_cache("compile")
    key = cache.key_for(source, config) if cache is not None else None
    if key is not None:
        hit = cache.get(key)
        if hit is not None:
            return hit
    tracer = obs_runtime.get_tracer()
    if not tracer.enabled:
        compiled = _compile(source, config)
    else:
        with tracer.span("compile", optimize=config.optimize,
                         safe=config.safe, checked=config.checked,
                         model=config.model.name,
                         passes=list(config.passes)) as sp:
            compiled = _compile(source, config)
            sp.set(code_size=compiled.asm.code_size(),
                   functions=len(compiled.asm.functions),
                   keep_lives=compiled.keep_lives)
    if key is not None:
        cache.put(key, compiled)
    return compiled


def compile_cache_key(source: str, config: CompileConfig) -> str | None:
    """The active compile cache's address for this compilation (None
    when no cache is installed or the inputs are not cacheable)."""
    cache = exec_cache.active_cache("compile")
    return cache.key_for(source, config) if cache is not None else None


def _compile(source: str, config: CompileConfig) -> CompiledProgram:
    tracer = obs_runtime.get_tracer()
    if config.run_cpp:
        source = preprocess(source, config.include_dirs)
    unit = parse(source)
    symbols = typecheck(unit)
    keep_lives = 0
    if config.safe or config.checked:
        # Copy, never mutate: annotate_options is caller-owned.
        options = replace(config.annotate_options or AnnotateOptions(),
                          mode="checked" if config.checked else "safe")
        with tracer.span("compile.annotate", mode=options.mode) as sp:
            result = Annotator(unit, options).run()
            keep_lives = result.stats.keep_lives
            sp.set(keep_lives=keep_lives,
                   temps_introduced=result.stats.temps_introduced,
                   heuristic_replacements=result.stats.heuristic_replacements)
        symbols = typecheck(unit)
    with tracer.span("compile.lower", debug=not config.optimize) as sp:
        ir = lower_unit(unit, symbols, debug=not config.optimize,
                        naive_keep_live=config.naive_keep_live)
        sp.set(functions=len(ir.functions),
               ir_insts=sum(len(fn.insts) for fn in ir.functions.values()))
    opt = (lambda fn: optimize(fn, config.passes)) if config.optimize else None
    with tracer.span("compile.codegen", model=config.model.name) as sp:
        asm = generate_program(ir, config.model, opt)
        sp.set(code_size=asm.code_size())
    return CompiledProgram(asm, ir, config, keep_lives)


def run_source(source: str, config: CompileConfig | None = None,
               entry: str = "main", stdin: str = "",
               gc_interval: int = 0, collector: Collector | None = None,
               max_instructions: int = 500_000_000) -> RunResult:
    """Compile and execute in one step."""
    compiled = compile_source(source, config)
    vm = VM(compiled.asm, (config or CompileConfig()).model,
            collector=collector, gc_interval=gc_interval,
            max_instructions=max_instructions)
    vm.stdin = stdin
    return vm.run(entry)
