"""Profile-guided superinstructions: fuse hot straight-line MInst
sequences into single dispatched closures.

The threaded-code interpreter (``vm.py``) pays a fixed per-instruction
toll: one dict-free loop iteration (count, budget check, dispatch) plus
one closure call per MInst.  For the hot inner blocks that vmprof
identifies, that toll dominates — the arithmetic inside the closures is
cheap compared to the dispatch around them.  A *superinstruction*
collapses a straight-line run of fusable instructions within one hot
basic block into a single ``exec``-compiled closure: registers are
cached in Python locals across the run, loads/stores keep their
page-cache fast path inline, and the loop dispatches once for the whole
run.

A run may contain conditional branches as *early exits*: the fused
closure evaluates the condition inline, and on a taken branch writes
back the registers cached so far, settles the instruction/cycle
counters for exactly the constituents that executed (branch taken-cost
included), and returns the branch target.  A trailing ``jmp`` or
``ret`` fuses the same way.  Calls (compiled or builtin) never fuse: a
collection can run inside them, and the collector must see the true
register file — locals cached in a fused closure would be invisible
roots.

Counts stay bit-identical by construction:

* every fusable op has a static model cost, and branch taken/not-taken
  costs are settled on the path actually executed, so instruction and
  cycle totals equal the unfused sums exactly;
* the instruction budget is checked once per *segment* (the
  unconditional stretch up to and including the next possible exit):
  a segment's constituents execute unconditionally once it is entered,
  so the unfused loop raises within the segment iff the fused check
  trips; the counter is left at ``budget + 1`` either way and the same
  :class:`~repro.machine.vm.VMError` escapes;
* runs never span branch landing sites (the instruction after a
  *targeted* label — one some branch actually names), so control can
  never jump into the middle of a fused region.  Fall-through-only
  labels are crossed freely as zero-cost constituents, which is what
  lets a whole loop (header test, body, step block, backward jump)
  fuse into one closure whose backward branch iterates *inside* the
  closure with registers still cached in locals;
* fusion is disabled entirely when ``gc_interval`` is nonzero: the
  asynchronous-collection trigger must observe every instruction
  boundary, and batching counter updates would shift which instructions
  collections land on.

Selection is profile-guided: a ``repro-vmprof-pgo/1`` envelope (emitted
by ``repro.obs`` from a profiled run, or by ``VMProfile.to_pgo``) names
each basic block's cycle share; the plan takes the top-N blocks above a
minimum share.  The plan's digest salts result-cache keys so PGO'd runs
never alias unPGO'd cache entries.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Iterable

from ..gc.memory import MemoryFault
from ..obs.vmprof import PGO_SCHEMA
from .asm import ALU_OPS, MInst, UNARY_OPS
from .vm import ALU_FUNCS, UNARY_FUNCS, VMError, _MASK, _RET_PC

# Runs shorter than this are not worth a fused closure: the single
# saved dispatch would not cover the writeback bookkeeping.
MIN_RUN = 2

# Default selection knobs: top-N blocks by cycles, ignoring blocks
# below a minimum share of total cycles (cold blocks would bloat
# closure-compile time for no dispatch savings).
DEFAULT_TOP = 64
DEFAULT_MIN_SHARE = 0.0005


# -- the persisted profile ---------------------------------------------------


def load_pgo(path: str) -> dict:
    """Read and validate a ``repro-vmprof-pgo/1`` envelope."""
    with open(path) as fh:
        doc = json.load(fh)
    schema = doc.get("schema") if isinstance(doc, dict) else None
    if schema != PGO_SCHEMA:
        raise ValueError(f"not a {PGO_SCHEMA} envelope: "
                         f"schema={schema!r} in {path}")
    return doc


def save_pgo(doc: dict, path: str) -> None:
    if doc.get("schema") != PGO_SCHEMA:
        raise ValueError(f"refusing to save non-{PGO_SCHEMA} document")
    with open(path, "w") as fh:
        json.dump(doc, fh, sort_keys=True)
        fh.write("\n")


# -- the plan ----------------------------------------------------------------


@dataclass(frozen=True)
class SuperinstPlan:
    """The fusion plan: which (function, block) pairs are hot.  Frozen
    and hashable so it can ride in cache keys and worker payloads."""

    blocks: frozenset
    source: str = ""

    def digest(self) -> str:
        """Stable identity of the plan, used to salt result-cache keys
        (a PGO'd run must never alias an unPGO'd cache entry)."""
        blob = json.dumps(sorted(self.blocks), separators=(",", ":"))
        return "pgo-" + hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def __bool__(self) -> bool:
        return bool(self.blocks)


def plan_from_pgo(doc: dict, top: int = DEFAULT_TOP,
                  min_share: float = DEFAULT_MIN_SHARE) -> SuperinstPlan:
    """Select the top-N hottest blocks from a pgo envelope.  Selection
    is deterministic: cycles descending, then (function, block) name."""
    total = int(doc.get("total_cycles") or 0)
    rows = [(str(r["function"]), str(r["block"]),
             int(r.get("cycles", 0)))
            for r in doc.get("blocks", ())]
    rows.sort(key=lambda r: (-r[2], r[0], r[1]))
    floor = total * min_share
    picked = frozenset((f, b) for f, b, cyc in rows[:top] if cyc >= floor)
    return SuperinstPlan(picked, source=str(doc.get("tag", "")))


def plan_from_profile(profile, top: int = DEFAULT_TOP,
                      min_share: float = DEFAULT_MIN_SHARE) -> SuperinstPlan:
    return plan_from_pgo(profile.to_pgo(), top=top, min_share=min_share)


# -- fusion ------------------------------------------------------------------


@dataclass
class FusedRun:
    """One installed superinstruction: insts[start..end] of a function."""
    start: int
    end: int
    block: str
    n_insts: int
    cycles: int


@dataclass
class SuperinstStats:
    runs: int = 0           # fused sequences installed
    instructions: int = 0   # constituent MInsts covered
    per_function: dict = field(default_factory=dict)

    def add(self, name: str, fused: Iterable[FusedRun]) -> None:
        for r in fused:
            self.runs += 1
            self.instructions += r.n_insts
            self.per_function[name] = self.per_function.get(name, 0) + 1


# Ops fusable with no per-op state beyond operands.  Calls are excluded
# (a collection may run inside them); labels are excluded (they delimit
# blocks and their successor is a branch target).  Conditional branches
# fuse as early exits; jmp/ret terminate a run.
_NO_CODE_OPS = frozenset(("nop", "keepsafe"))
_EXIT_OPS = frozenset(("bz", "bnz", "jmp", "ret"))

# ALU/unary ops whose semantics are inlined as expressions; the rest
# (div/mod/signed compares/shifts with sign handling) call the bound
# semantic function from vm.py, preserving error messages exactly.
_INLINE_RR = {
    "add": "({a} + {b}) & 4294967295",
    "sub": "({a} - {b}) & 4294967295",
    "mul": "({a} * {b}) & 4294967295",
    "and": "{a} & {b}",
    "or": "{a} | {b}",
    "xor": "{a} ^ {b}",
    "shl": "(({a}) << ({b} & 31)) & 4294967295",
    "srl": "({a}) >> ({b} & 31)",
    "seq": "1 if {a} == {b} else 0",
    "sne": "1 if {a} != {b} else 0",
    "sltu": "1 if {a} < {b} else 0",
    "sleu": "1 if {a} <= {b} else 0",
    "sgtu": "1 if {a} > {b} else 0",
    "sgeu": "1 if {a} >= {b} else 0",
}
_INLINE_UNARY = {
    "neg": "(-({a})) & 4294967295",
    "bnot": "(~({a})) & 4294967295",
    "not": "1 if {a} == 0 else 0",
    "zext8": "({a}) & 255",
    "zext16": "({a}) & 65535",
}


def _fusable(vm, inst: MInst, labels: dict[str, int]) -> bool:
    op = inst.op
    if op in _NO_CODE_OPS or op == "li" or op == "mov":
        return True
    if op in ALU_OPS or op in UNARY_OPS:
        return True
    if op == "ld" or op == "st" or op == "ret":
        return True
    if op == "bz" or op == "bnz" or op == "jmp":
        # Only with a resolvable target: an undefined label must keep
        # its raise-on-execute closure.
        return inst.symbol in labels
    if op == "la":
        # Likewise only when the symbol resolves.
        return (inst.symbol in vm.global_addr
                or inst.symbol in vm.func_addr)
    return False


def _find_runs(vm, name: str, insts: list[MInst],
               labels: dict[str, int], plan: SuperinstPlan):
    """Maximal fusable runs starting in hot blocks: straight-line code
    plus conditional-branch early exits, terminated by calls, jmp, ret,
    or anything unfusable — and never containing a branch-entry point
    strictly inside.

    Only *targeted* labels (those some branch names) are entry points;
    a fall-through-only label is reachable solely from the instruction
    above it, so a run may safely cross it.  That is what lets a whole
    loop — header test, body, step block, backward jump — fuse into a
    single closure: the header's label is targeted (the backward jump
    names it), so the run starts right after it, and the backward jump
    then targets the run's own start and loops in place.  An open run
    also continues through the cold fall-through stretch after such a
    label: it executes exactly as often as the hot code above it."""
    hot = plan.blocks
    targeted = {inst.symbol for inst in insts
                if inst.op in ("bz", "bnz", "jmp")}
    runs: list[tuple[int, int, str]] = []
    run_block = "entry"
    cur_block = "entry"
    start = -1

    def flush(stop: int) -> None:
        if start >= 0 and stop - start >= MIN_RUN:
            runs.append((start, stop - 1, run_block))

    for i, inst in enumerate(insts):
        if inst.op == "label":
            if inst.symbol in targeted:
                # Branch landing site: the next instruction is an entry
                # point, so no run may cross it.  (Untargeted labels
                # fall through into the run and fuse as zero-cost
                # constituents.)
                flush(i)
                start = -1
            cur_block = inst.symbol
            continue
        if not _fusable(vm, inst, labels):
            flush(i)
            start = -1
            continue
        if start < 0:
            if (name, cur_block) in hot:
                start = i
                run_block = cur_block
            continue
        if inst.op == "jmp" or inst.op == "ret":
            # Control unconditionally leaves: close the run here
            # (anything up to the next label is unreachable).
            flush(i + 1)
            start = -1
    flush(len(insts))
    return runs


def _compile_run(vm, insts: list[MInst], start: int, end: int,
                 labels: dict[str, int]) -> tuple:
    """exec-compile insts[start..end] into one closure.  Returns
    (closure, n_insts, cycles)."""
    model = vm.model
    env: dict[str, Any] = {
        "_R": vm.regs,
        "_ST": vm._st,
        "_PG": vm.memory._pages,
        "_ERR": VMError,
        "_FB": int.from_bytes,
        "_LD": _make_slow_load(vm),
        "_STO": _make_slow_store(vm),
    }
    bound: dict[int, str] = {}

    def bind(fn) -> str:
        name = bound.get(id(fn))
        if name is None:
            name = f"_f{len(bound)}"
            bound[id(fn)] = name
            env[name] = fn
        return name

    # All register loads are hoisted to a preamble before the run body
    # (the register dict cannot change while the closure runs — only
    # its own exits write it — so loading early reads the same values).
    # This lets a backward branch targeting the run's own start loop
    # *inside* the closure with registers still cached in locals.
    #
    # A run with such a backward branch preloads every touched register
    # and writes the full set back at every exit (after iteration one,
    # anything may be dirty; identity writes of preloaded locals are
    # harmless).  A straight-line run is cheaper: execution reaching
    # constituent ``i`` has unconditionally executed every write before
    # ``i`` (non-exit constituents assign on all paths), so each exit
    # writes back exactly the prefix of registers written so far, and
    # write-only registers need no preload at all.
    has_self = any(
        insts[i].op in ("bz", "bnz", "jmp")
        and insts[i].symbol in labels
        and labels[insts[i].symbol] + 1 == start
        for i in range(start, end + 1))
    body: list[str] = []
    loads: list[str] = []
    known: dict[str, str] = {}

    def rd(reg: str) -> str:
        v = known.get(reg)
        if v is None:
            v = known[reg] = "_r_" + reg
            loads.append(f"    {v} = _R[{reg!r}]")
        return v

    def wr(reg: str) -> str:
        if has_self:
            return rd(reg)
        v = known.get(reg)
        if v is None:
            v = known[reg] = "_r_" + reg
        written.add(reg)
        return v

    written: set[str] = set()

    # Every register the run writes, known up front so any exit — even
    # one before the write in iteration one of an in-closure loop — can
    # write back the full set (identity writes are harmless: the local
    # was preloaded from the dict).
    full_written = sorted({w for i in range(start, end + 1)
                           if (w := insts[i].register_written())})
    if has_self:
        for reg in full_written:
            rd(reg)

    budget = vm.max_instructions
    guarded = -1  # additional-instruction count already budget-checked

    # Self-loop runs keep the instruction/cycle counters in locals for
    # the closure's lifetime and settle ``_ST`` only when leaving: no
    # call can occur inside a run, so nothing else observes the shared
    # counters while the closure iterates.  (At a budget raise the
    # counter is settled to ``budget + 1``; the cycle counter's partial
    # state is unobservable — no RunResult is built on a VMError.)
    ic = "_ic" if has_self else "_ST[0]"
    if has_self:
        loads.append("    _ic = _ST[0]")
        loads.append("    _cy = _ST[1]")

    def emit_check(through: int) -> None:
        """Guard the unconditional segment ending at index ``through``:
        once entered, everything up to there executes, so one check
        against the segment's final count raises iff the per-
        instruction loop would have raised inside it (leaving the
        counter at budget + 1 either way)."""
        nonlocal guarded
        e = through - start
        if e <= guarded:
            return
        guarded = e
        body.append(f"    if {ic} + {e} > {budget}:")
        body.append(f"        _ST[0] = {budget + 1}")
        body.append("        raise _ERR('instruction budget exceeded "
                    "(runaway program?)')")

    def seg_end(frm: int) -> int:
        for j in range(frm, end + 1):
            if insts[j].op in _EXIT_OPS:
                return j
        return end

    def emit_exit(i: int, extra_cycles: int, target: int,
                  indent: str) -> None:
        """Settle counters, then leave the run (or, for a branch back
        to the run's own start, loop in place with locals intact)."""
        if target == start:
            # Self-loop: count and budget-check the next iteration's
            # leader (the external loop would have done both), keep
            # the register cache, and restart the body.
            body.append(f"{indent}_ic += {i - start + 1}")
            body.append(f"{indent}if _ic > {budget}:")
            body.append(f"{indent}    _ST[0] = {budget + 1}")
            body.append(f"{indent}    raise _ERR('instruction budget "
                        "exceeded (runaway program?)')")
            body.append(f"{indent}_cy += {cycles + extra_cycles}")
            body.append(f"{indent}continue")
            return
        for reg in (full_written if has_self else sorted(written)):
            body.append(f"{indent}_R[{reg!r}] = {known[reg]}")
        if has_self:
            body.append(f"{indent}_ST[0] = _ic + {i - start}")
            body.append(f"{indent}_ST[1] = _cy + {cycles + extra_cycles}")
        else:
            if i > start:
                body.append(f"{indent}_ST[0] += {i - start}")
            body.append(f"{indent}_ST[1] += {cycles + extra_cycles}")
        body.append(f"{indent}return {target}")

    cycles = 0  # static cost of the fall-through path so far
    tmp = 0
    for i in range(start, end + 1):
        inst = insts[i]
        op = inst.op
        # Guard the whole segment ahead (through its terminating exit);
        # an exit op itself only needs to be guarded through i.
        emit_check(i if op in _EXIT_OPS else seg_end(i))
        if op == "bz" or op == "bnz":
            cond = rd(inst.rs1)
            taken = model.cycles_for(op, taken=True)
            target = labels[inst.symbol] + 1
            rel = "==" if op == "bz" else "!="
            body.append(f"    if {cond} {rel} 0:")
            emit_exit(i, taken, target, " " * 8)
            cycles += model.cycles_for(op)
            continue
        if op == "jmp":
            taken = model.cycles_for(op, taken=True)
            emit_exit(i, taken, labels[inst.symbol] + 1, " " * 4)
            cycles += taken
            continue
        if op == "ret":
            emit_exit(i, model.cycles_for(op), _RET_PC, " " * 4)
            cycles += model.cycles_for(op)
            continue
        cycles += model.cycles_for(op)
        if op in _NO_CODE_OPS or op == "label":
            # Zero cycles, no code; counts one instruction by position
            # (the unfused loop dispatches its op_skip closure once).
            continue
        if op == "li":
            val = (inst.imm or 0) & _MASK
            body.append(f"    {wr(inst.rd)} = {val}")
        elif op == "la":
            addr = vm.global_addr.get(inst.symbol)
            if addr is None:
                addr = vm.func_addr[inst.symbol]
            body.append(f"    {wr(inst.rd)} = {addr}")
        elif op == "mov":
            src = rd(inst.rs1)
            body.append(f"    {wr(inst.rd)} = {src}")
        elif op in ALU_OPS:
            a = rd(inst.rs1)
            if inst.rs2 is not None:
                b = rd(inst.rs2)
            else:
                b = str((inst.imm or 0) & _MASK)
            tmpl = _INLINE_RR.get(op)
            if tmpl is not None:
                expr = tmpl.format(a=a, b=b)
            else:
                expr = f"{bind(ALU_FUNCS[op])}({a}, {b})"
            body.append(f"    {wr(inst.rd)} = {expr}")
        elif op in UNARY_OPS:
            a = rd(inst.rs1)
            tmpl = _INLINE_UNARY.get(op)
            if tmpl is not None:
                expr = tmpl.format(a=a)
            else:
                expr = f"{bind(UNARY_FUNCS[op])}({a})"
            body.append(f"    {wr(inst.rd)} = {expr}")
        elif op == "ld":
            base = rd(inst.rs1)
            idx = rd(inst.rs2) if inst.rs2 else str(inst.imm or 0)
            w = inst.width
            t = tmp = tmp + 1
            body.append(f"    _a{t} = ({base} + {idx}) & 4294967295")
            body.append(f"    _o{t} = _a{t} & 4095")
            body.append(f"    _p{t} = _PG.get(_a{t} >> 12)")
            dst = wr(inst.rd)
            if w == 4:
                body.append(f"    if _p{t} is None or _o{t} > 4092:")
                body.append(f"        {dst} = _LD(_a{t}, 4, False)")
                body.append(f"    else:")
                body.append(f"        {dst} = "
                            f"_FB(_p{t}[_o{t}:_o{t} + 4], 'little')")
            else:
                body.append(f"    if _p{t} is None or _o{t} + {w} > 4096:")
                body.append(f"        {dst} = _LD(_a{t}, {w}, {inst.signed})")
                body.append(f"    else:")
                body.append(f"        {dst} = _FB(_p{t}[_o{t}:_o{t} + {w}], "
                            f"'little', signed={inst.signed}) & 4294967295")
        elif op == "st":
            val = rd(inst.rd)
            base = rd(inst.rs1)
            idx = rd(inst.rs2) if inst.rs2 else str(inst.imm or 0)
            w = inst.width
            vmask = (1 << (8 * w)) - 1
            t = tmp = tmp + 1
            body.append(f"    _a{t} = ({base} + {idx}) & 4294967295")
            body.append(f"    _o{t} = _a{t} & 4095")
            body.append(f"    _p{t} = _PG.get(_a{t} >> 12)")
            body.append(f"    if _p{t} is None or _o{t} + {w} > 4096:")
            body.append(f"        _STO(_a{t}, {val}, {w})")
            body.append(f"    else:")
            body.append(f"        _p{t}[_o{t}:_o{t} + {w}] = "
                        f"(({val}) & {vmask}).to_bytes({w}, 'little')")
        else:  # pragma: no cover - guarded by _fusable
            raise VMError(f"cannot fuse {op!r}")

    n_insts = end - start + 1
    if insts[end].op != "jmp" and insts[end].op != "ret":
        emit_exit(end, 0, end + 1, " " * 4)
    lines = ["def _super(pc):"]
    lines.extend(loads)
    lines.append("    while True:")
    lines.extend("    " + line for line in body)
    code = compile("\n".join(lines), f"<superinst:{start}-{end}>", "exec")
    ns = dict(env)
    exec(code, ns)
    return ns["_super"], n_insts, cycles


def _make_slow_load(vm):
    mem = vm.memory

    def _ld(a, width, signed):
        try:
            return mem.load(a, width, signed) & _MASK
        except MemoryFault:
            raise VMError(f"load fault at 0x{a:08x}") from None
    return _ld


def _make_slow_store(vm):
    mem = vm.memory

    def _st(a, value, width):
        try:
            mem.store(a, value, width)
        except MemoryFault:
            raise VMError(f"store fault at 0x{a:08x}") from None
    return _st


def fuse_function(vm, name: str, insts: list[MInst],
                  labels: dict[str, int], ops: list,
                  plan: SuperinstPlan) -> list[FusedRun]:
    """Install fused closures for hot runs of ``name`` in-place into the
    compiled closure list ``ops``; returns the installed runs (the
    profiler uses them to attribute fused cycles back to constituents)."""
    fused: list[FusedRun] = []
    for start, end, block in _find_runs(vm, name, insts, labels, plan):
        closure, n_insts, cycles = _compile_run(vm, insts, start, end, labels)
        ops[start] = closure
        fused.append(FusedRun(start, end, block, n_insts, cycles))
    return fused
