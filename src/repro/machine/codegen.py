"""IR -> machine code generation.

Includes the addressing-mode folding a real -O compiler does: an ``add``
feeding a single load/store folds into ``ld [x+y]`` / ``ld [x+imm]``
("indexed loads ... which is profitable on some machines that allow a
free addition in the load instruction").  A ``keep`` between the
arithmetic and the memory access makes the address flow through the
barrier, so the fold cannot apply — this is the paper's primary source
of KEEP_LIVE overhead, later recovered by the postprocessor.
"""

from __future__ import annotations

from dataclasses import dataclass

from .asm import ARG_REGS, FP, MFunc, MInst, MProgram, RV, SCRATCH, SP
from .ir import Inst, IRFunc, IRProgram, Vreg, basic_blocks
from .models import MachineModel
from .regalloc import Allocation, allocate

_BIN_TO_M = {
    "add": "add", "sub": "sub", "mul": "mul", "div": "div", "mod": "mod",
    "and": "and", "or": "or", "xor": "xor", "shl": "shl", "shr": "shr",
    "shru": "srl",
    "eq": "seq", "ne": "sne", "lt": "slt", "le": "sle", "gt": "sgt",
    "ge": "sge", "ult": "sltu", "ule": "sleu", "ugt": "sgtu", "uge": "sgeu",
}

_IMM_LIMIT = 4096  # simple signed-displacement field limit


class CodegenError(Exception):
    pass


class FuncCodegen:
    def __init__(self, fn: IRFunc, model: MachineModel, alloc: Allocation):
        self.fn = fn
        self.model = model
        self.alloc = alloc
        self.out: list[MInst] = []
        self.slot_offset: dict[str, int] = {}
        self.frame_size = 0
        self._fused: set[int] = set()
        self._fold_for: dict[int, tuple] = {}

    # -- frame ------------------------------------------------------------

    def _layout(self) -> None:
        offset = 4  # [fp-4] holds the saved fp
        self._callee_save_offsets: dict[str, int] = {}
        for reg in self.alloc.used_callee:
            offset += 4
            self._callee_save_offsets[reg] = -offset
        for slot in self.fn.slots.values():
            align = max(slot.align, 1)
            offset = (offset + slot.size + align - 1) // align * align
            self.slot_offset[slot.name] = -offset
        self.frame_size = (offset + 7) // 8 * 8

    # -- register access ---------------------------------------------------

    def _src(self, vreg: Vreg, scratch: str) -> str:
        iv = self.alloc.intervals.get(vreg)
        if iv is None:
            raise CodegenError(f"use of unallocated vreg {vreg!r} in {self.fn.name}")
        if iv.reg is not None:
            return iv.reg
        assert iv.spill_slot is not None
        self.out.append(MInst("ld", rd=scratch, rs1=FP,
                              imm=self.slot_offset[iv.spill_slot]))
        return scratch

    def _dst_reg(self, vreg: Vreg) -> tuple[str, str | None]:
        """Return (register to compute into, spill slot name or None)."""
        iv = self.alloc.intervals.get(vreg)
        if iv is None:
            return SCRATCH[2], None  # dead destination; compute and drop
        if iv.reg is not None:
            return iv.reg, None
        return SCRATCH[2], iv.spill_slot

    def _finish_dst(self, spill_slot: str | None, reg: str) -> None:
        if spill_slot is not None:
            self.out.append(MInst("st", rd=reg, rs1=FP,
                                  imm=self.slot_offset[spill_slot]))

    # -- fold analysis -------------------------------------------------------

    def _analyze_folds(self) -> None:
        """Identify add instructions fusable into a following load/store
        address within the same block."""
        uses: dict[Vreg, int] = {}
        for inst in self.fn.insts:
            for a in inst.args:
                uses[a] = uses.get(a, 0) + 1
        for block in basic_blocks(self.fn):
            def_at: dict[Vreg, int] = {}
            redefined_after: dict[Vreg, int] = {}
            for idx in block:
                inst = self.fn.insts[idx]
                if inst.dst is not None:
                    def_at[inst.dst] = idx
            for idx in block:
                inst = self.fn.insts[idx]
                if inst.op not in ("load", "store"):
                    continue
                addr = inst.args[0] if inst.op == "load" else inst.args[1]
                d = def_at.get(addr)
                if d is None or d >= idx:
                    continue
                add = self.fn.insts[d]
                if add.op != "bin" or add.subop != "add" or uses.get(addr, 0) != 1:
                    continue
                x, y = add.args
                # x and y must not be redefined between the add and here.
                clobbered = False
                for k in range(d + 1, idx):
                    dk = self.fn.insts[k].dst
                    if dk is not None and dk in (x, y, addr):
                        clobbered = True
                        break
                if clobbered:
                    continue
                # Immediate form when y is a single-use const in range.
                y_def = def_at.get(y)
                imm = None
                if (y_def is not None and y_def < idx
                        and self.fn.insts[y_def].op == "const"
                        and uses.get(y, 0) == 1):
                    value = self.fn.insts[y_def].imm or 0
                    signed = value - (1 << 32) if value >= 1 << 31 else value
                    if -_IMM_LIMIT <= signed < _IMM_LIMIT:
                        imm = signed
                        self._fused.add(y_def)
                self._fused.add(d)
                self._fold_for[idx] = (x, y, imm)

    # -- main ---------------------------------------------------------------

    def generate(self) -> MFunc:
        self._analyze_folds()
        self._layout()
        self._prologue()
        for idx, inst in enumerate(self.fn.insts):
            if idx in self._fused:
                continue
            self._emit(idx, inst)
        # Safety net: function falls off the end.
        if not self.out or self.out[-1].op != "ret":
            self._epilogue()
            self.out.append(MInst("ret"))
        mf = MFunc(self.fn.name, self.out, self.frame_size)
        return mf

    def _prologue(self) -> None:
        self.out.append(MInst("st", rd=FP, rs1=SP, imm=-4))
        self.out.append(MInst("mov", rd=FP, rs1=SP))
        self.out.append(MInst("sub", rd=SP, rs1=SP, imm=self.frame_size))
        for reg, off in self._callee_save_offsets.items():
            self.out.append(MInst("st", rd=reg, rs1=FP, imm=off))
        for i, param in enumerate(self.fn.params):
            iv = self.alloc.intervals.get(param)
            if iv is None:
                continue  # unused parameter
            if iv.reg is not None:
                self.out.append(MInst("mov", rd=iv.reg, rs1=ARG_REGS[i]))
            else:
                assert iv.spill_slot is not None
                self.out.append(MInst("st", rd=ARG_REGS[i], rs1=FP,
                                      imm=self.slot_offset[iv.spill_slot]))

    def _epilogue(self) -> None:
        for reg, off in self._callee_save_offsets.items():
            self.out.append(MInst("ld", rd=reg, rs1=FP, imm=off))
        self.out.append(MInst("mov", rd=SP, rs1=FP))
        self.out.append(MInst("ld", rd=FP, rs1=FP, imm=-4))

    def _emit(self, idx: int, inst: Inst) -> None:
        op = inst.op
        if op == "label":
            self.out.append(MInst("label", symbol=inst.symbol))
        elif op == "comment":
            pass
        elif op == "const":
            reg, spill = self._dst_reg(inst.dst)
            self.out.append(MInst("li", rd=reg, imm=inst.imm or 0))
            self._finish_dst(spill, reg)
        elif op == "la":
            reg, spill = self._dst_reg(inst.dst)
            self.out.append(MInst("la", rd=reg, symbol=inst.symbol))
            self._finish_dst(spill, reg)
        elif op == "frame":
            reg, spill = self._dst_reg(inst.dst)
            off = self.slot_offset[inst.symbol]
            self.out.append(MInst("add", rd=reg, rs1=FP, imm=off))
            self._finish_dst(spill, reg)
        elif op == "mov":
            src = self._src(inst.args[0], SCRATCH[0])
            reg, spill = self._dst_reg(inst.dst)
            if src != reg:
                self.out.append(MInst("mov", rd=reg, rs1=src))
            self._finish_dst(spill, reg)
        elif op == "un":
            src = self._src(inst.args[0], SCRATCH[0])
            reg, spill = self._dst_reg(inst.dst)
            self.out.append(MInst(inst.subop, rd=reg, rs1=src))
            self._finish_dst(spill, reg)
        elif op == "bin":
            a = self._src(inst.args[0], SCRATCH[0])
            b = self._src(inst.args[1], SCRATCH[1])
            reg, spill = self._dst_reg(inst.dst)
            self.out.append(MInst(_BIN_TO_M[inst.subop], rd=reg, rs1=a, rs2=b))
            self._finish_dst(spill, reg)
        elif op == "load":
            self._emit_load(idx, inst)
        elif op == "store":
            self._emit_store(idx, inst)
        elif op == "jmp":
            self.out.append(MInst("jmp", symbol=inst.symbol))
        elif op in ("bz", "bnz"):
            src = self._src(inst.args[0], SCRATCH[0])
            self.out.append(MInst(op, rs1=src, symbol=inst.symbol))
        elif op == "call":
            self._emit_call(inst, target_symbol=inst.symbol)
        elif op == "callr":
            target = self._src(inst.args[0], SCRATCH[2])
            self._emit_call(inst, target_reg=target, skip_first_arg=True)
        elif op == "ret":
            if inst.args:
                src = self._src(inst.args[0], SCRATCH[0])
                if src != RV:
                    self.out.append(MInst("mov", rd=RV, rs1=src))
            self._epilogue()
            self.out.append(MInst("ret"))
        elif op == "keep":
            self._emit_keep(inst)
        else:
            raise CodegenError(f"cannot emit IR op {op!r}")

    def _emit_load(self, idx: int, inst: Inst) -> None:
        reg, spill = self._dst_reg(inst.dst)
        fold = self._fold_for.get(idx)
        if fold is not None:
            x, y, imm = fold
            rx = self._src(x, SCRATCH[0])
            if imm is not None:
                self.out.append(MInst("ld", rd=reg, rs1=rx, imm=imm,
                                      width=inst.width, signed=inst.signed))
            else:
                ry = self._src(y, SCRATCH[1])
                self.out.append(MInst("ld", rd=reg, rs1=rx, rs2=ry,
                                      width=inst.width, signed=inst.signed))
        else:
            addr = self._src(inst.args[0], SCRATCH[0])
            self.out.append(MInst("ld", rd=reg, rs1=addr, imm=0,
                                  width=inst.width, signed=inst.signed))
        self._finish_dst(spill, reg)

    def _emit_store(self, idx: int, inst: Inst) -> None:
        value = self._src(inst.args[0], SCRATCH[2])
        fold = self._fold_for.get(idx)
        if fold is not None:
            x, y, imm = fold
            rx = self._src(x, SCRATCH[0])
            if imm is not None:
                self.out.append(MInst("st", rd=value, rs1=rx, imm=imm,
                                      width=inst.width))
            else:
                ry = self._src(y, SCRATCH[1])
                self.out.append(MInst("st", rd=value, rs1=rx, rs2=ry,
                                      width=inst.width))
        else:
            addr = self._src(inst.args[1], SCRATCH[0])
            self.out.append(MInst("st", rd=value, rs1=addr, imm=0,
                                  width=inst.width))

    def _emit_call(self, inst: Inst, target_symbol: str = "",
                   target_reg: str | None = None, skip_first_arg: bool = False) -> None:
        args = inst.args[1:] if skip_first_arg else inst.args
        if len(args) > len(ARG_REGS):
            raise CodegenError("too many call arguments")
        for i, arg in enumerate(args):
            src = self._src(arg, ARG_REGS[i])
            if src != ARG_REGS[i]:
                self.out.append(MInst("mov", rd=ARG_REGS[i], rs1=src))
        if target_reg is not None:
            self.out.append(MInst("callr", rs1=target_reg, nargs=len(args)))
        else:
            self.out.append(MInst("call", symbol=target_symbol, nargs=len(args)))
        if inst.dst is not None and inst.dst in self.alloc.intervals:
            reg, spill = self._dst_reg(inst.dst)
            if reg != RV:
                self.out.append(MInst("mov", rd=reg, rs1=RV))
                self._finish_dst(spill, reg)
            else:
                self._finish_dst(spill, reg)

    def _emit_keep(self, inst: Inst) -> None:
        """KEEP_LIVE: zero machine instructions, but the value must sit
        in the destination's location and the base must have stayed live
        to this point (the allocator guaranteed that).  Emits the marker
        the postprocessor understands, plus a mov when the tie could not
        be coalesced."""
        src = self._src(inst.args[0], SCRATCH[0])
        base = self._src(inst.args[1], SCRATCH[1])
        self.out.append(MInst("keepsafe", rs1=src, rs2=base))
        reg, spill = self._dst_reg(inst.dst)
        if src != reg:
            self.out.append(MInst("mov", rd=reg, rs1=src))
        self._finish_dst(spill, reg)


def generate_program(ir: IRProgram, model: MachineModel,
                     optimize_fn=None) -> MProgram:
    """Allocate registers and emit machine code for a whole program.
    ``optimize_fn(fn)`` runs per function first when given."""
    prog = MProgram(globals=dict(ir.globals))
    for fn in ir.functions.values():
        if optimize_fn is not None:
            optimize_fn(fn)
        alloc = allocate(fn, model)
        prog.functions[fn.name] = FuncCodegen(fn, model, alloc).generate()
    return prog
