"""RISC-style target instruction set.

A load-store, three-operand machine in the SPARC mold (the paper's
primary target).  Loads support register+immediate and register+register
addressing — ``ld [%o0+1]`` style index arithmetic folded into the load
is exactly the optimization KEEP_LIVE suppresses and the postprocessor
recovers ("a free addition in the load instruction").

``keepsafe rs1, rs2`` is the zero-cost marker the compiler leaves for
the peephole postprocessor: rs1 holds a KEEP_LIVE result, rs2 its base
("It generated a special comment understood by the peephole
optimizer.").
"""

from __future__ import annotations

from dataclasses import dataclass, field

# Special registers (not allocatable).
SP = "sp"  # stack pointer
FP = "fp"  # frame pointer
RV = "rv"  # return value
ARG_REGS = tuple(f"a{i}" for i in range(6))
SCRATCH = ("x0", "x1", "x2")  # reserved for spill reloads

ALU_OPS = frozenset(
    "add sub mul div mod and or xor shl shr srl "
    "seq sne slt sle sgt sge sltu sleu sgtu sgeu".split()
)
UNARY_OPS = frozenset("neg not bnot sext8 zext8 sext16 zext16".split())
BRANCH_OPS = frozenset("jmp bz bnz".split())


@dataclass
class MInst:
    """One machine instruction.

    ops: li, la, mov, <alu>, <unary>, ld, st, jmp, bz, bnz,
         call, callr, ret, keepsafe, label, nop
    ``ld``/``st`` use rs1 + (rs2 or imm) addressing.
    """

    op: str
    rd: str | None = None
    rs1: str | None = None
    rs2: str | None = None
    imm: int | None = None
    symbol: str = ""
    width: int = 4
    signed: bool = True
    nargs: int = 0

    def registers_read(self) -> list[str]:
        regs = []
        if self.op == "st":
            # st rd(value) -> [rs1 + rs2/imm]; the "destination" is memory.
            if self.rd:
                regs.append(self.rd)
        if self.rs1:
            regs.append(self.rs1)
        if self.rs2:
            regs.append(self.rs2)
        if self.op == "keepsafe":
            pass  # rs1/rs2 already included
        if self.op in ("call", "callr"):
            regs.extend(ARG_REGS[: self.nargs])
        if self.op == "ret":
            regs.append(RV)
        return regs

    def register_written(self) -> str | None:
        if self.op in ("st", "jmp", "bz", "bnz", "ret", "label", "nop", "keepsafe"):
            return None
        return self.rd

    def render(self) -> str:
        op = self.op
        if op == "label":
            return f"{self.symbol}:"
        if op == "li":
            return f"    li {self.rd}, {self.imm}"
        if op == "la":
            return f"    la {self.rd}, {self.symbol}"
        if op == "mov":
            return f"    mov {self.rd}, {self.rs1}"
        if op in ALU_OPS:
            src2 = self.rs2 if self.rs2 is not None else self.imm
            return f"    {op} {self.rd}, {self.rs1}, {src2}"
        if op in UNARY_OPS:
            return f"    {op} {self.rd}, {self.rs1}"
        if op == "ld":
            suffix = {1: "b", 2: "h", 4: "w"}[self.width]
            if not self.signed and self.width < 4:
                suffix += "u"
            addr = f"[{self.rs1}+{self.rs2}]" if self.rs2 else f"[{self.rs1}+{self.imm or 0}]"
            return f"    ld{suffix} {self.rd}, {addr}"
        if op == "st":
            suffix = {1: "b", 2: "h", 4: "w"}[self.width]
            addr = f"[{self.rs1}+{self.rs2}]" if self.rs2 else f"[{self.rs1}+{self.imm or 0}]"
            return f"    st{suffix} {self.rd}, {addr}"
        if op in ("jmp",):
            return f"    jmp {self.symbol}"
        if op in ("bz", "bnz"):
            return f"    {op} {self.rs1}, {self.symbol}"
        if op == "call":
            return f"    call {self.symbol}, {self.nargs}"
        if op == "callr":
            return f"    callr {self.rs1}, {self.nargs}"
        if op == "ret":
            return "    ret"
        if op == "keepsafe":
            return f"    !keepsafe {self.rs1}, {self.rs2}"
        if op == "nop":
            return "    nop"
        raise ValueError(f"cannot render {self.op}")


@dataclass
class MFunc:
    name: str
    insts: list[MInst] = field(default_factory=list)
    frame_size: int = 0

    def code_size(self) -> int:
        """Static size in instructions, excluding labels and zero-size
        markers (the paper's object-code expansion metric)."""
        return sum(1 for i in self.insts
                   if i.op not in ("label", "keepsafe", "nop"))

    def render(self) -> str:
        lines = [f"{self.name}:  ! frame={self.frame_size}"]
        lines.extend(i.render() for i in self.insts)
        return "\n".join(lines)


@dataclass
class MProgram:
    functions: dict[str, MFunc] = field(default_factory=dict)
    globals: dict = field(default_factory=dict)  # name -> GlobalVar

    def code_size(self) -> int:
        return sum(f.code_size() for f in self.functions.values())

    def render(self) -> str:
        return "\n\n".join(f.render() for f in self.functions.values())
