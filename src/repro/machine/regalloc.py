"""Linear-scan register allocation.

The allocatable pool is split into caller-saved (``t*``) and
callee-saved (``s*``) halves; intervals that are live across a call must
take a callee-saved register or spill.  The split sizes come from the
machine model — the Pentium 90's six registers versus the SPARCs'
sixteen is how the paper's register-pressure observation (Analysis
section) becomes measurable here.

KEEP_LIVE interacts with allocation in two ways, both from the paper:
its base operand's live range extends to the barrier ("It may require
another register to preserve the original value of p, and thus
conceivably add register spill code"), and its destination is tied to
its source ("requests that the first argument be assigned the same
location as the result") via an allocation hint.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ir import Inst, IRFunc, Vreg, basic_blocks
from .models import MachineModel


@dataclass
class Interval:
    vreg: Vreg
    start: int
    end: int
    crosses_call: bool = False
    hint: Vreg | None = None
    reg: str | None = None
    spill_slot: str | None = None


@dataclass
class Allocation:
    intervals: dict[Vreg, Interval]
    caller_regs: list[str]
    callee_regs: list[str]
    used_callee: list[str] = field(default_factory=list)
    spill_count: int = 0

    def loc(self, vreg: Vreg) -> Interval:
        return self.intervals[vreg]


def _liveness(fn: IRFunc) -> tuple[list[list[int]], list[set[Vreg]], list[set[Vreg]]]:
    blocks = basic_blocks(fn)
    label_block = {}
    for b, idxs in enumerate(blocks):
        first = fn.insts[idxs[0]]
        if first.op == "label":
            label_block[first.symbol] = b
    succs: list[list[int]] = []
    for b, idxs in enumerate(blocks):
        out: list[int] = []
        last = fn.insts[idxs[-1]]
        if last.op == "jmp":
            if last.symbol in label_block:
                out.append(label_block[last.symbol])
        elif last.op in ("bz", "bnz"):
            if last.symbol in label_block:
                out.append(label_block[last.symbol])
            if b + 1 < len(blocks):
                out.append(b + 1)
        elif last.op == "ret":
            pass
        elif b + 1 < len(blocks):
            out.append(b + 1)
        succs.append(out)

    use: list[set[Vreg]] = []
    defs: list[set[Vreg]] = []
    for idxs in blocks:
        u: set[Vreg] = set()
        d: set[Vreg] = set()
        for i in idxs:
            inst = fn.insts[i]
            for a in inst.args:
                if a not in d:
                    u.add(a)
            if inst.dst is not None:
                d.add(inst.dst)
        use.append(u)
        defs.append(d)

    live_in: list[set[Vreg]] = [set() for _ in blocks]
    live_out: list[set[Vreg]] = [set() for _ in blocks]
    changed = True
    while changed:
        changed = False
        for b in range(len(blocks) - 1, -1, -1):
            out: set[Vreg] = set()
            for s in succs[b]:
                out |= live_in[s]
            inn = use[b] | (out - defs[b])
            if out != live_out[b] or inn != live_in[b]:
                live_out[b], live_in[b] = out, inn
                changed = True
    return blocks, live_in, live_out


def build_intervals(fn: IRFunc) -> tuple[dict[Vreg, Interval], list[int]]:
    """Crude single-range intervals plus the list of call positions."""
    blocks, live_in, live_out = _liveness(fn)
    intervals: dict[Vreg, Interval] = {}
    call_positions: list[int] = []

    def touch(vreg: Vreg, pos: int) -> None:
        iv = intervals.get(vreg)
        if iv is None:
            intervals[vreg] = Interval(vreg, pos, pos)
        else:
            iv.start = min(iv.start, pos)
            iv.end = max(iv.end, pos)

    for p, param in enumerate(fn.params):
        touch(param, -1)

    for b, idxs in enumerate(blocks):
        if not idxs:
            continue
        bstart, bend = 2 * idxs[0], 2 * idxs[-1] + 1
        for vreg in live_in[b]:
            touch(vreg, bstart)
        for vreg in live_out[b]:
            touch(vreg, bend)
        for i in idxs:
            inst = fn.insts[i]
            if inst.op in ("call", "callr"):
                call_positions.append(2 * i)
            for a in inst.args:
                touch(a, 2 * i)
            if inst.dst is not None:
                touch(inst.dst, 2 * i + 1)
            if inst.op in ("keep", "mov") and inst.dst is not None and inst.args:
                iv = intervals.setdefault(
                    inst.dst, Interval(inst.dst, 2 * i + 1, 2 * i + 1))
                iv.hint = inst.args[0]
    for iv in intervals.values():
        iv.crosses_call = any(iv.start < c and iv.end > c for c in call_positions)
    return intervals, call_positions


def allocate(fn: IRFunc, model: MachineModel) -> Allocation:
    """Assign machine registers (or spill slots) to every vreg."""
    n_caller = (model.num_regs + 1) // 2
    n_callee = model.num_regs - n_caller
    caller_regs = [f"t{i}" for i in range(n_caller)]
    callee_regs = [f"s{i}" for i in range(n_callee)]

    intervals, _ = build_intervals(fn)
    alloc = Allocation(intervals, caller_regs, callee_regs)
    order = sorted(intervals.values(), key=lambda iv: (iv.start, iv.end))
    active: list[Interval] = []
    free_caller = list(caller_regs)
    free_callee = list(callee_regs)
    spill_n = 0

    def expire(pos: int) -> None:
        nonlocal active
        still = []
        for iv in active:
            if iv.end < pos:
                if iv.reg is not None:
                    (free_callee if iv.reg in callee_regs else free_caller).append(iv.reg)
            else:
                still.append(iv)
        active = still

    for iv in order:
        expire(iv.start)
        pools = ([free_callee, free_caller] if iv.crosses_call
                 else [free_caller, free_callee])
        if iv.crosses_call:
            pools = [free_callee]  # caller-saved would be clobbered
        reg: str | None = None
        # Allocation hint (keep/mov ties).
        if iv.hint is not None:
            hinted = intervals.get(iv.hint)
            if hinted is not None and hinted.reg is not None:
                hreg = hinted.reg
                for pool in pools:
                    if hreg in pool:
                        pool.remove(hreg)
                        reg = hreg
                        break
        if reg is None:
            for pool in pools:
                if pool:
                    reg = pool.pop()
                    break
        if reg is None:
            # Spill: evict the compatible active interval ending last,
            # or spill this interval itself.
            candidates = [a for a in active
                          if a.reg is not None
                          and (a.reg in callee_regs) == iv.crosses_call]
            victim = max(candidates, key=lambda a: a.end, default=None)
            if victim is not None and victim.end > iv.end:
                reg = victim.reg
                victim.reg = None
                spill_n += 1
                victim.spill_slot = f"spill.{victim.vreg.id}"
                fn.add_slot(victim.spill_slot, 4)
            else:
                spill_n += 1
                iv.spill_slot = f"spill.{iv.vreg.id}"
                fn.add_slot(iv.spill_slot, 4)
                active.append(iv)
                continue
        iv.reg = reg
        if reg in callee_regs and reg not in alloc.used_callee:
            alloc.used_callee.append(reg)
        active.append(iv)

    alloc.spill_count = spill_n
    return alloc
