"""Compiler + machine substrate: IR, optimizer, register allocator,
RISC-like code generator, cost models, and the executing VM."""

from .asm import MFunc, MInst, MProgram
from .codegen import generate_program
from .driver import CompileConfig, CompiledProgram, compile_source, run_source
from .ir import Inst, IRFunc, IRProgram, Vreg
from .lower import LowerError, lower_unit
from .models import MODELS, MachineModel, PENTIUM_90, SPARC_10, SPARCSTATION_2
from .regalloc import allocate
from .vm import VM, RunResult, VMError

__all__ = [
    "MFunc", "MInst", "MProgram", "generate_program", "CompileConfig",
    "CompiledProgram", "compile_source", "run_source", "Inst", "IRFunc",
    "IRProgram", "Vreg", "LowerError", "lower_unit", "MODELS",
    "MachineModel", "PENTIUM_90", "SPARC_10", "SPARCSTATION_2",
    "allocate", "VM", "RunResult", "VMError",
]
