"""Shared argparse plumbing — one helper, not five copies.

Every report-emitting subcommand carries the same flag trio:

* ``--json`` — print the command's versioned envelope
  (:mod:`repro.api.envelopes`) instead of the human rendering;
* ``--metrics-out FILE`` — write a ``repro-obs-metrics/1`` snapshot of
  the run (JSONL; a ``.prom`` path gets Prometheus text);
* ``--workers N`` — shard the work across N engine processes
  (byte-identical output at any N; a no-op for inherently single-unit
  commands, which accept it for surface uniformity).

``add_report_flags`` installs the trio; the obs pair
(``--trace``/``--profile``) and ``--cache-dir`` keep their own helpers
here too, so ``repro``, ``repro.fuzz``, ``repro serve`` and ``repro
chaos`` all share one spelling and :class:`repro.api.Client` callers
see the same serialization the CLIs print.
"""

from __future__ import annotations

import argparse


def add_report_flags(p: argparse.ArgumentParser, *, json_schema: str,
                     workers: bool = True, workers_default: int = 1,
                     metrics: bool = True,
                     json_flag: bool = True) -> None:
    """The uniform ``--json`` / ``--metrics-out`` / ``--workers`` trio.

    ``json_schema`` names the envelope the command emits (shown in
    ``--help``); individual flags can be suppressed only where they
    cannot apply (e.g. ``--workers`` on ``cache clear``).
    """
    if json_flag:
        p.add_argument("--json", action="store_true",
                       help=f"emit a {json_schema} JSON envelope")
    if metrics:
        p.add_argument("--metrics-out", default=None, metavar="FILE",
                       help="write a repro-obs-metrics/1 snapshot of this "
                            "run (JSONL; a .prom path gets Prometheus "
                            "text format)")
    if workers:
        p.add_argument("--workers", type=int, default=workers_default,
                       help="shard work across N engine processes "
                            "(output is byte-identical at any N)")


def add_obs_flags(p: argparse.ArgumentParser) -> None:
    """``--trace`` / ``--profile`` — the tracing side of telemetry."""
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="write a JSONL telemetry trace of this run")
    p.add_argument("--profile", action="store_true",
                   help="print the VM hot-spot profile to stderr")


def add_cache_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="enable the content-addressed compile/result "
                        "caches rooted at DIR (default: $REPRO_CACHE_DIR)")


__all__ = ["add_report_flags", "add_obs_flags", "add_cache_flags"]
