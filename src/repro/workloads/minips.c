/* minips -- a miniature PostScript-flavored stack interpreter standing
 * in for Ghostscript ("gs: Ghostscript, as distributed with the Zorn
 * benchmark suite ... The Ghostscript custom allocator was disabled"),
 * i.e. every interpreter object comes from the collected heap.
 *
 * Supports: integers, operators (add sub mul div dup exch pop index
 * roll), procedures in braces, def/load into a dictionary, if/repeat
 * control, array building, and a "show" operator that renders into a
 * raster of character cells (our stand-in for page rendering).  The
 * driver runs an embedded program that draws filled boxes and text into
 * the raster and checksums it.
 */

#define STACK_MAX 256
#define T_INT 0
#define T_PROC 1
#define T_ARRAY 2
#define T_NAME 3

struct value;

struct array_obj {
    struct value *items;
    int n;
};

struct value {
    int tag;
    int ival;           /* T_INT */
    char *text;         /* T_PROC: program text; T_NAME: the name */
    struct array_obj *arr;
};
typedef struct value value;

struct dict_entry {
    char *name;
    value *val;
    struct dict_entry *next;
};
typedef struct dict_entry dict_entry;

value *op_stack[STACK_MAX];
int sp = 0;
dict_entry *dict = 0;

int raster_w = 40;
int raster_h = 16;
char *raster = 0;

value *make_int(int v)
{
    value *x = (value *) GC_malloc(sizeof(value));
    x->tag = T_INT;
    x->ival = v;
    x->text = 0;
    x->arr = 0;
    return x;
}

value *make_proc(char *body, int len)
{
    value *x = (value *) GC_malloc(sizeof(value));
    char *copy = (char *) GC_malloc(len + 1);
    int i;
    for (i = 0; i < len; i++) copy[i] = body[i];
    copy[len] = 0;
    x->tag = T_PROC;
    x->ival = 0;
    x->text = copy;
    x->arr = 0;
    return x;
}

value *make_name(char *name, int len)
{
    value *x = (value *) GC_malloc(sizeof(value));
    char *copy = (char *) GC_malloc(len + 1);
    int i;
    for (i = 0; i < len; i++) copy[i] = name[i];
    copy[len] = 0;
    x->tag = T_NAME;
    x->ival = 0;
    x->text = copy;
    x->arr = 0;
    return x;
}

value *make_array(int n)
{
    value *x = (value *) GC_malloc(sizeof(value));
    struct array_obj *arr = (struct array_obj *) GC_malloc(sizeof(struct array_obj));
    int i;
    arr->items = (struct value *) GC_malloc(n * sizeof(struct value));
    arr->n = n;
    for (i = 0; i < n; i++) {
        arr->items[i].tag = T_INT;
        arr->items[i].ival = 0;
        arr->items[i].text = 0;
        arr->items[i].arr = 0;
    }
    x->tag = T_ARRAY;
    x->ival = 0;
    x->text = 0;
    x->arr = arr;
    return x;
}

void push(value *v)
{
    if (sp >= STACK_MAX) { puts("minips: stack overflow"); exit(2); }
    op_stack[sp++] = v;
}

value *pop_val(void)
{
    if (sp <= 0) { puts("minips: stack underflow"); exit(2); }
    return op_stack[--sp];
}

int pop_int(void)
{
    value *v = pop_val();
    if (v->tag != T_INT) { puts("minips: type error"); exit(2); }
    return v->ival;
}

void dict_def(char *name, value *v)
{
    dict_entry *e = (dict_entry *) GC_malloc(sizeof(dict_entry));
    char *copy = (char *) GC_malloc(strlen(name) + 1);
    strcpy(copy, name);
    e->name = copy;
    e->val = v;
    e->next = dict;
    dict = e;
}

value *dict_load(char *name)
{
    dict_entry *e;
    for (e = dict; e != 0; e = e->next) {
        if (strcmp(e->name, name) == 0) return e->val;
    }
    return 0;
}

/* raster primitives: the "rendering" side of our gs stand-in */
void raster_clear(void)
{
    int i;
    raster = (char *) GC_malloc(raster_w * raster_h);
    for (i = 0; i < raster_w * raster_h; i++) raster[i] = ' ';
}

void raster_box(int x, int y, int w, int h, int ch)
{
    int i, j;
    for (j = y; j < y + h; j++) {
        if (j < 0 || j >= raster_h) continue;
        for (i = x; i < x + w; i++) {
            if (i < 0 || i >= raster_w) continue;
            raster[j * raster_w + i] = ch;
        }
    }
}

void raster_text(int x, int y, char *s)
{
    int i;
    if (y < 0 || y >= raster_h) return;
    for (i = 0; s[i]; i++) {
        int cx = x + i;
        if (cx < 0 || cx >= raster_w) continue;
        raster[y * raster_w + cx] = s[i];
    }
}

int raster_checksum(void)
{
    int sum = 0;
    int i;
    for (i = 0; i < raster_w * raster_h; i++) {
        sum = sum * 17 + raster[i];
        sum = sum % 1000003;
    }
    return sum;
}

void interp(char *prog);

/* Execute one operator by name. */
void exec_op(char *name)
{
    if (strcmp(name, "add") == 0) { int b = pop_int(); push(make_int(pop_int() + b)); }
    else if (strcmp(name, "sub") == 0) { int b = pop_int(); push(make_int(pop_int() - b)); }
    else if (strcmp(name, "mul") == 0) { int b = pop_int(); push(make_int(pop_int() * b)); }
    else if (strcmp(name, "div") == 0) { int b = pop_int(); push(make_int(pop_int() / b)); }
    else if (strcmp(name, "mod") == 0) { int b = pop_int(); push(make_int(pop_int() % b)); }
    else if (strcmp(name, "dup") == 0) { value *v = pop_val(); push(v); push(v); }
    else if (strcmp(name, "pop") == 0) { pop_val(); }
    else if (strcmp(name, "exch") == 0) {
        value *b = pop_val(); value *a = pop_val(); push(b); push(a);
    }
    else if (strcmp(name, "index") == 0) {
        int n = pop_int();
        if (n < 0 || n >= sp) { puts("minips: bad index"); exit(2); }
        push(op_stack[sp - 1 - n]);
    }
    else if (strcmp(name, "eq") == 0) { int b = pop_int(); push(make_int(pop_int() == b)); }
    else if (strcmp(name, "lt") == 0) { int b = pop_int(); push(make_int(pop_int() < b)); }
    else if (strcmp(name, "gt") == 0) { int b = pop_int(); push(make_int(pop_int() > b)); }
    else if (strcmp(name, "if") == 0) {
        value *proc = pop_val();
        int cond = pop_int();
        if (cond) interp(proc->text);
    }
    else if (strcmp(name, "ifelse") == 0) {
        value *pelse = pop_val();
        value *pthen = pop_val();
        int cond = pop_int();
        interp(cond ? pthen->text : pelse->text);
    }
    else if (strcmp(name, "repeat") == 0) {
        value *proc = pop_val();
        int n = pop_int();
        int i;
        for (i = 0; i < n; i++) interp(proc->text);
    }
    else if (strcmp(name, "exec") == 0) {
        value *proc = pop_val();
        interp(proc->text);
    }
    else if (strcmp(name, "def") == 0) {
        value *v = pop_val();
        value *n = pop_val();
        dict_def(n->text, v);
    }
    else if (strcmp(name, "newarray") == 0) {
        int n = pop_int();
        if (n < 0) { puts("minips: bad array size"); exit(2); }
        push(make_array(n));
    }
    else if (strcmp(name, "length") == 0) {
        value *a = pop_val();
        if (a->tag != T_ARRAY) { puts("minips: length of non-array"); exit(2); }
        push(make_int(a->arr->n));
    }
    else if (strcmp(name, "get") == 0) {
        int i = pop_int();
        value *a = pop_val();
        if (a->tag != T_ARRAY || i < 0 || i >= a->arr->n) {
            puts("minips: bad get"); exit(2);
        }
        push(make_int(a->arr->items[i].ival));
    }
    else if (strcmp(name, "put") == 0) {
        int v = pop_int();
        int i = pop_int();
        value *a = pop_val();
        if (a->tag != T_ARRAY || i < 0 || i >= a->arr->n) {
            puts("minips: bad put"); exit(2);
        }
        a->arr->items[i].ival = v;
        push(a);
    }
    else if (strcmp(name, "box") == 0) {
        int ch = pop_int();
        int h = pop_int();
        int w = pop_int();
        int y = pop_int();
        int x = pop_int();
        raster_box(x, y, w, h, ch);
    }
    else if (strcmp(name, "clear") == 0) { raster_clear(); }
    else {
        value *v = dict_load(name);
        if (v == 0) { printf("minips: undefined name %s\n", name); exit(2); }
        if (v->tag == T_PROC) interp(v->text);
        else push(v);
    }
}

/* The scanner/interpreter: whitespace-separated tokens. */
void interp(char *prog)
{
    char *p = prog;
    while (*p) {
        while (*p == ' ' || *p == '\n' || *p == '\t') p++;
        if (*p == 0) break;
        if (*p == '{') {
            /* scan matching brace */
            char *start = p + 1;
            int depth = 1;
            p++;
            while (*p && depth > 0) {
                if (*p == '{') depth++;
                if (*p == '}') depth--;
                p++;
            }
            push(make_proc(start, p - start - 1));
        } else if (*p == '/') {
            char *start = p + 1;
            p++;
            while (*p && *p != ' ' && *p != '\n' && *p != '\t') p++;
            push(make_name(start, p - start));
        } else if ((*p >= '0' && *p <= '9') || (*p == '-' && p[1] >= '0' && p[1] <= '9')) {
            int sign = 1;
            int v = 0;
            if (*p == '-') { sign = -1; p++; }
            while (*p >= '0' && *p <= '9') {
                v = v * 10 + (*p - '0');
                p++;
            }
            push(make_int(sign * v));
        } else {
            char name[32];
            int n = 0;
            while (*p && *p != ' ' && *p != '\n' && *p != '\t' && n < 31) {
                name[n++] = *p;
                p++;
            }
            name[n] = 0;
            exec_op(name);
        }
    }
}

char *PROGRAM =
    "clear "
    "/size 3 def "
    "/row 0 def "
    "/col 0 def "
    "/cell { "
    "  col size mul row size mul size size "
    "  col row add 7 mod 65 add box "
    "  /col col 1 add def "
    "} def "
    "/line { /col 0 def 8 { cell } repeat /row row 1 add def } def "
    "/page { /row 0 def 4 { line } repeat } def "
    "1 { page } repeat "
    /* arithmetic churn and control flow */
    "0 10 { 1 add } repeat "
    "dup 9 gt { 100 add } { 200 add } ifelse "
    "dup 2 mod 0 eq { 3 mul } if "
    "pop "
    "0 1 2 3 4 5 6 7 8 9 add add add add add add add add add pop "
    /* array workout: build a table, square it in place, render a bar */
    "/tbl 10 newarray def "
    "/i 0 def "
    "10 { tbl i i i mul put pop /i i 1 add def } repeat "
    "/i 0 def "
    "8 { "
    "  i 2 mul 13 tbl i get 12 mod 1 add 1 35 box "
    "  /i i 1 add def "
    "} repeat "
    "tbl length pop ";

int main(void)
{
    int check;
    int round;
    int total = 0;
    for (round = 0; round < 2; round++) {
        sp = 0;
        dict = 0;
        raster_clear();
        interp(PROGRAM);
        check = raster_checksum();
        total = (total * 31 + check) % 1000003;
    }
    printf("minips: checksum=%d\n", total);
    return total % 251;
}
