"""Benchmark workloads — scaled-down counterparts of the paper's
cordtest / cfrac / gawk / gs programs, written in the supported C
subset.  Each is "very pointer and allocation intensive" like the
originals, and runs deterministically (fixed inputs, checksummed
output) so every compiler configuration can be verified to compute the
same answer.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

_HERE = os.path.dirname(os.path.abspath(__file__))


def _miniawk_input() -> str:
    """Deterministic multi-column text input for miniawk (the paper ran
    gawk "with the second largest input supplied by Zorn")."""
    words = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"]
    lines = []
    for i in range(80):
        cols = [words[(i * 3 + j) % 8] for j in range(5)]
        cols.append(str(i % 10))
        cols.append(str(i))
        lines.append(" ".join(cols))
    return "\n".join(lines) + "\n"


@dataclass(frozen=True)
class WorkloadSpec:
    name: str
    filename: str
    description: str
    stdin: str = ""


WORKLOADS: dict[str, WorkloadSpec] = {
    "cordtest": WorkloadSpec(
        "cordtest", "cordtest.c",
        "cord (rope) string package test [paper: 2100-line cordtest]"),
    "cfrac": WorkloadSpec(
        "cfrac", "cfrac.c",
        "bignum factoring [paper: 6000-line cfrac, Zorn suite]"),
    "miniawk": WorkloadSpec(
        "miniawk", "miniawk.c",
        "field/record text processor [paper: 8500-line gawk 2.11]",
        stdin=_miniawk_input()),
    "minips": WorkloadSpec(
        "minips", "minips.c",
        "stack-machine page interpreter [paper: 29500-line Ghostscript]"),
}

# Auxiliary workloads: not part of the paper's tables, used by the test
# suite and examples (gcbench is Boehm's classic collector benchmark).
AUX_WORKLOADS: dict[str, WorkloadSpec] = {
    "gcbench": WorkloadSpec(
        "gcbench", "gcbench.c",
        "Ellis/Kovac/Boehm GCBench: binary-tree allocation churn"),
    "scratch": WorkloadSpec(
        "scratch", "scratch.c",
        "short-lived scratch buffers: allocation-sinking showcase"),
}

WORKLOAD_NAMES = tuple(WORKLOADS)


def workload_path(name: str) -> str:
    spec = WORKLOADS.get(name) or AUX_WORKLOADS[name]
    return os.path.join(_HERE, spec.filename)


def load_workload(name: str, defines: dict | None = None) -> str:
    """Return the workload's C source, with optional extra #defines
    prepended (e.g. ``{"GAWK_BUG": "1"}`` to seed the gawk bug)."""
    with open(workload_path(name)) as fh:
        source = fh.read()
    if defines:
        prelude = "".join(f"#define {k} {v}\n" for k, v in defines.items())
        source = prelude + source
    return source
