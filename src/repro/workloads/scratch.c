/* scratch -- allocation-sinking showcase: a checksum kernel that burns
 * through short-lived constant-size scratch buffers.  Every buffer is
 * filled, reduced, and dead before the next allocation, so the
 * escape-analysis sinking pass (postproc.sink) can rewrite every
 * allocation in the hot loop to frame-local storage; with sinking off,
 * the allocation volume forces regular collections.  Not part of the
 * paper's tables; used by the sinking tests, benchmarks, and the
 * check_vm_pgo CI gate to demonstrate reduced collections/live bytes.
 *
 * The `hold` array keeps a sliver of long-lived heap data so the
 * collector has real marking work in the unsunk build.
 */

#define ROUNDS 30000
#define WORDS 8
#define KEEP 64

int *hold[KEEP];

int mix(int seed)
{
    int k;
    int acc = seed;
    int *buf = (int *) GC_malloc(WORDS * 4);
    for (k = 0; k < WORDS; k++)
        buf[k] = acc + k * 2654435761u;
    for (k = 0; k < WORDS; k++)
        acc = (acc ^ buf[k]) + (buf[k] >> 3);
    return acc;
}

int sum2(int seed)
{
    int k;
    int acc = 0;
    int *a = (int *) GC_malloc(WORDS * 4);
    int *b = (int *) a;            /* alias through cast: still sinks */
    for (k = 0; k < WORDS; k++)
        a[k] = seed ^ (k * 40503);
    for (k = 0; k < WORDS; k++)
        acc += b[k] & 0xFFFF;
    return acc;
}

int main(void)
{
    int i;
    int check = 0;
    for (i = 0; i < KEEP; i++) {
        hold[i] = (int *) GC_malloc(WORDS * 4);  /* escapes: stays heap */
        hold[i][0] = i;
    }
    for (i = 0; i < ROUNDS; i++) {
        check = check + mix(i) + sum2(check);
        if ((i & 1023) == 0)
            check += hold[i & (KEEP - 1)][0];
    }
    printf("check=%d\n", check);
    return (check < 0 ? -check : check) % 251;
}
