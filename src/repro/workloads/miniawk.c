/* miniawk -- a field/record text processor standing in for gawk 2.11
 * ("the GNU awk interpreter ... second smallest member of the Zorn
 * benchmark suite").
 *
 * Reads records from stdin, splits them into fields, and runs a fixed
 * program: count words, track per-word frequencies in a chained hash
 * table, accumulate numeric columns, and report.  All strings and
 * table nodes live in the collected heap.
 *
 * When compiled with -DGAWK_BUG the field splitter uses the
 * "one-before-the-beginning" array idiom, the real gawk bug family the
 * paper's checker caught immediately: "With checking enabled, it
 * immediately and correctly detected a pointer arithmetic error which
 * was also an array access error."
 */

#define HASH_SIZE 64

struct word {
    char *text;
    int count;
    struct word *next;
};
typedef struct word word;

struct field_list {
    char **fields;
    int nfields;
};
typedef struct field_list field_list;

word *table[HASH_SIZE];
int total_words = 0;
int total_lines = 0;
int numeric_sum = 0;

char *gc_strdup(char *s)
{
    char *copy = (char *) GC_malloc(strlen(s) + 1);
    strcpy(copy, s);
    return copy;
}

int hash_string(char *s)
{
    int h = 0;
    while (*s) {
        h = h * 31 + *s;
        s++;
    }
    h = h % HASH_SIZE;
    if (h < 0) h += HASH_SIZE;
    return h;
}

word *lookup(char *text, int insert)
{
    int h = hash_string(text);
    word *w;
    for (w = table[h]; w != 0; w = w->next) {
        if (strcmp(w->text, text) == 0) return w;
    }
    if (!insert) return 0;
    w = (word *) GC_malloc(sizeof(word));
    w->text = gc_strdup(text);
    w->count = 0;
    w->next = table[h];
    table[h] = w;
    return w;
}

/* Read one record (line) from stdin into a fresh heap buffer. */
char *read_record(void)
{
    char buf[256];
    int n = 0;
    int c;
    while (1) {
        c = getchar();
        if (c < 0 || c > 255) {       /* EOF */
            if (n == 0) return 0;
            break;
        }
        if (c == '\n') break;
        if (n < 255) buf[n++] = c;
    }
    buf[n] = 0;
    return gc_strdup(buf);
}

/* Split a record into fields on spaces/tabs; returns a field list. */
field_list *split_fields(char *rec)
{
    field_list *fl = (field_list *) GC_malloc(sizeof(field_list));
    char **fields = (char **) GC_malloc(32 * sizeof(char *));
    int nf = 0;
    char *p = rec;
    while (*p) {
        char *start;
        int len;
        while (*p == ' ' || *p == '\t') p++;
        if (*p == 0) break;
        start = p;
        while (*p && *p != ' ' && *p != '\t') p++;
        len = p - start;
        if (nf < 32) {
            char *f = (char *) GC_malloc(len + 1);
            int i;
#ifdef GAWK_BUG
            /* The gawk bug family: treat the field as a 1-origin array
             * by keeping a pointer one before its beginning.  Works by
             * accident with malloc; dies in a garbage collected system
             * (and the checker flags the arithmetic immediately). */
            char *f1 = f - 1;
            for (i = 1; i <= len; i++) f1[i] = start[i - 1];
            f1[len + 1] = 0;
#else
            for (i = 0; i < len; i++) f[i] = start[i];
            f[len] = 0;
#endif
            fields[nf++] = f;
        }
    }
    fl->fields = fields;
    fl->nfields = nf;
    return fl;
}

int is_number(char *s)
{
    if (*s == '-' || *s == '+') s++;
    if (*s == 0) return 0;
    while (*s) {
        if (*s < '0' || *s > '9') return 0;
        s++;
    }
    return 1;
}

/* The "program": NF counting, word frequency, numeric accumulation. */
void process_record(char *rec)
{
    field_list *fl = split_fields(rec);
    int i;
    total_lines++;
    for (i = 0; i < fl->nfields; i++) {
        char *f = fl->fields[i];
        total_words++;
        if (is_number(f)) {
            numeric_sum += atoi(f);
        } else {
            word *w = lookup(f, 1);
            w->count++;
        }
    }
}

/* Report: most frequent word and aggregate counters. */
int report(void)
{
    int h;
    word *best = 0;
    int distinct = 0;
    for (h = 0; h < HASH_SIZE; h++) {
        word *w;
        for (w = table[h]; w != 0; w = w->next) {
            distinct++;
            if (best == 0 || w->count > best->count
                || (w->count == best->count && strcmp(w->text, best->text) < 0)) {
                best = w;
            }
        }
    }
    printf("miniawk: lines=%d words=%d distinct=%d sum=%d\n",
           total_lines, total_words, distinct, numeric_sum);
    if (best != 0) {
        printf("miniawk: top=%s (%d)\n", best->text, best->count);
    }
    return total_words + distinct + numeric_sum;
}

int main(void)
{
    char *rec;
    int check;
    while ((rec = read_record()) != 0) {
        process_record(rec);
    }
    check = report();
    return check % 251;
}
