/* cordtest -- exercise a cord (rope) string package, after the
 * "cordtest" benchmark of the paper: "Iterations of the test normally
 * distributed with our `cord' string package.  This was run with our
 * garbage collector."
 *
 * Cords are immutable trees of string fragments: concatenation is O(1)
 * allocation, substring shares structure, and flattening walks the
 * tree.  Heavily pointer- and allocation-intensive, all in GC heap.
 */

#define FLAT_THRESHOLD 16

struct cord {
    int len;
    int depth;
    char *leaf;          /* non-null for leaf nodes */
    struct cord *left;
    struct cord *right;
};
typedef struct cord cord;

int cord_alloc_count = 0;

cord *cord_from_string(char *s)
{
    cord *c = (cord *) GC_malloc(sizeof(cord));
    int n = strlen(s);
    char *copy = (char *) GC_malloc(n + 1);
    strcpy(copy, s);
    c->len = n;
    c->depth = 0;
    c->leaf = copy;
    c->left = 0;
    c->right = 0;
    cord_alloc_count++;
    return c;
}

cord *cord_from_char(int ch)
{
    char buf[2];
    buf[0] = ch;
    buf[1] = 0;
    return cord_from_string(buf);
}

int cord_len(cord *c)
{
    if (c == 0) return 0;
    return c->len;
}

int cord_depth(cord *c)
{
    if (c == 0) return 0;
    return c->depth;
}

cord *cord_cat(cord *a, cord *b)
{
    cord *c;
    int da, db;
    if (a == 0) return b;
    if (b == 0) return a;
    c = (cord *) GC_malloc(sizeof(cord));
    c->len = a->len + b->len;
    da = a->depth;
    db = b->depth;
    c->depth = 1 + (da > db ? da : db);
    c->leaf = 0;
    c->left = a;
    c->right = b;
    cord_alloc_count++;
    return c;
}

int cord_index(cord *c, int i)
{
    while (c->leaf == 0) {
        int ll = c->left->len;
        if (i < ll) {
            c = c->left;
        } else {
            i = i - ll;
            c = c->right;
        }
    }
    return c->leaf[i];
}

/* Flatten a cord into a fresh heap string. */
static void cord_fill(cord *c, char *out, int pos)
{
    if (c == 0) return;
    if (c->leaf != 0) {
        char *p = c->leaf;
        char *q = out + pos;
        while (*p) *q++ = *p++;
        return;
    }
    cord_fill(c->left, out, pos);
    cord_fill(c->right, out, pos + c->left->len);
}

char *cord_to_string(cord *c)
{
    char *out = (char *) GC_malloc(cord_len(c) + 1);
    cord_fill(c, out, 0);
    out[cord_len(c)] = 0;
    return out;
}

cord *cord_substr(cord *c, int start, int n)
{
    if (c == 0 || n <= 0) return 0;
    if (start < 0) { n = n + start; start = 0; }
    if (start >= c->len) return 0;
    if (start + n > c->len) n = c->len - start;
    if (c->leaf != 0) {
        char *buf = (char *) GC_malloc(n + 1);
        int i;
        for (i = 0; i < n; i++) buf[i] = c->leaf[start + i];
        buf[n] = 0;
        {
            cord *leaf = (cord *) GC_malloc(sizeof(cord));
            leaf->len = n;
            leaf->depth = 0;
            leaf->leaf = buf;
            leaf->left = 0;
            leaf->right = 0;
            cord_alloc_count++;
            return leaf;
        }
    }
    {
        int ll = c->left->len;
        if (start + n <= ll) return cord_substr(c->left, start, n);
        if (start >= ll) return cord_substr(c->right, start - ll, n);
        return cord_cat(cord_substr(c->left, start, ll - start),
                        cord_substr(c->right, 0, start + n - ll));
    }
}

int cord_cmp(cord *a, cord *b)
{
    int la = cord_len(a);
    int lb = cord_len(b);
    int n = la < lb ? la : lb;
    int i;
    for (i = 0; i < n; i++) {
        int ca = cord_index(a, i);
        int cb = cord_index(b, i);
        if (ca != cb) return ca < cb ? -1 : 1;
    }
    if (la == lb) return 0;
    return la < lb ? -1 : 1;
}

/* Iterator-style traversal: sum of characters (checksum). */
static int cord_sum(cord *c)
{
    if (c == 0) return 0;
    if (c->leaf != 0) {
        int s = 0;
        char *p;
        for (p = c->leaf; *p; p++) s += *p;
        return s;
    }
    return cord_sum(c->left) + cord_sum(c->right);
}

/* Reverse a cord (structural). */
cord *cord_reverse(cord *c)
{
    if (c == 0) return 0;
    if (c->leaf != 0) {
        int n = c->len;
        char *buf = (char *) GC_malloc(n + 1);
        int i;
        for (i = 0; i < n; i++) buf[i] = c->leaf[n - 1 - i];
        buf[n] = 0;
        return cord_from_string(buf);
    }
    return cord_cat(cord_reverse(c->right), cord_reverse(c->left));
}

/* Substring search: first position of needle in c, or -1. */
int cord_find(cord *c, char *needle)
{
    int n = cord_len(c);
    int m = strlen(needle);
    int i, j;
    if (m == 0) return 0;
    for (i = 0; i + m <= n; i++) {
        for (j = 0; j < m; j++) {
            if (cord_index(c, i + j) != needle[j]) break;
        }
        if (j == m) return i;
    }
    return -1;
}

/* Insert cord b at position pos of cord a (structure sharing). */
cord *cord_insert(cord *a, int pos, cord *b)
{
    return cord_cat(cord_cat(cord_substr(a, 0, pos), b),
                    cord_substr(a, pos, cord_len(a) - pos));
}

/* Delete n characters starting at pos (structure sharing). */
cord *cord_delete(cord *a, int pos, int n)
{
    return cord_cat(cord_substr(a, 0, pos),
                    cord_substr(a, pos + n, cord_len(a) - pos - n));
}

/* Rebalance by flattening when too deep. */
cord *cord_balance(cord *c)
{
    if (c == 0) return 0;
    if (c->depth > FLAT_THRESHOLD) {
        return cord_from_string(cord_to_string(c));
    }
    return c;
}

static int test_round(int round)
{
    cord *c = 0;
    cord *words[8];
    int i;
    int check = 0;
    words[0] = cord_from_string("the ");
    words[1] = cord_from_string("quick ");
    words[2] = cord_from_string("brown ");
    words[3] = cord_from_string("fox ");
    words[4] = cord_from_string("jumps ");
    words[5] = cord_from_string("over ");
    words[6] = cord_from_string("lazy ");
    words[7] = cord_from_string("dogs ");

    /* Build a biggish cord by repeated concatenation. */
    for (i = 0; i < 60; i++) {
        c = cord_cat(c, words[(i + round) % 8]);
        c = cord_balance(c);
    }
    check += cord_len(c);
    check += cord_sum(c) % 1000;
    check += cord_index(c, cord_len(c) / 2);

    /* Substrings share or copy structure. */
    {
        cord *mid = cord_substr(c, cord_len(c) / 4, cord_len(c) / 2);
        cord *rev = cord_reverse(mid);
        check += cord_len(mid) + cord_depth(rev) % 7;
        check += cord_cmp(mid, rev) + 1;
        check += cord_cmp(mid, mid) + cord_cmp(rev, rev);
    }

    /* Flatten and compare against character indexing. */
    {
        char *flat = cord_to_string(c);
        int n = cord_len(c);
        int step = n / 17 + 1;
        for (i = 0; i < n; i += step) {
            if (flat[i] != cord_index(c, i)) return -99999;
        }
        check += strlen(flat) % 100;
    }

    /* Search, insert, delete: edits share structure. */
    {
        cord *marker = cord_from_string("<MARK>");
        cord *edited = cord_insert(c, cord_len(c) / 3, marker);
        int at = cord_find(edited, "<MARK>");
        if (at != cord_len(c) / 3) return -88888;
        edited = cord_delete(edited, at, cord_len(marker));
        if (cord_len(edited) != cord_len(c)) return -77777;
        check += cord_cmp(edited, c) == 0 ? 13 : -1;
        check += cord_find(c, "fox") >= 0 ? 7 : 0;
        check += cord_find(c, "zebra") == -1 ? 3 : 0;
    }
    return check;
}

int main(void)
{
    int round;
    int total = 0;
    for (round = 0; round < 5; round++) {
        total += test_round(round);
    }
    printf("cordtest: checksum=%d allocs=%d\n", total, cord_alloc_count);
    if (total != 0) return total % 251;
    return 0;
}
