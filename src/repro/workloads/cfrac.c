/* cfrac -- integer factoring with heap-allocated multi-precision
 * numbers, standing in for the cfrac member of Zorn's benchmark suite
 * ("A factoring program ... very pointer and allocation intensive").
 *
 * Numbers are little-endian digit vectors (base 10000) allocated from
 * the collected heap; every arithmetic operation allocates a fresh
 * result, as the original cfrac's bignum package does.  Factoring uses
 * trial division followed by Pollard's rho with a squared-continued
 * fraction flavored iteration, all in bignum arithmetic.
 */

#define BASE 10000

struct big {
    int n;          /* number of digits in use */
    short *d;       /* digit vector, little-endian, base 10000 */
};
typedef struct big big;

int big_allocs = 0;

big *big_new(int n)
{
    big *b = (big *) GC_malloc(sizeof(big));
    b->d = (short *) GC_malloc(n * sizeof(short));
    b->n = n;
    big_allocs++;
    return b;
}

big *big_from_int(int v)
{
    big *b = big_new(4);
    int i;
    for (i = 0; i < 4; i++) {
        b->d[i] = v % BASE;
        v = v / BASE;
    }
    while (b->n > 1 && b->d[b->n - 1] == 0) b->n--;
    return b;
}

int big_to_int(big *a)
{
    int v = 0;
    int i;
    for (i = a->n - 1; i >= 0; i--) v = v * BASE + a->d[i];
    return v;
}

int big_is_zero(big *a)
{
    return a->n == 1 && a->d[0] == 0;
}

int big_cmp(big *a, big *b)
{
    int i;
    if (a->n != b->n) return a->n < b->n ? -1 : 1;
    for (i = a->n - 1; i >= 0; i--) {
        if (a->d[i] != b->d[i]) return a->d[i] < b->d[i] ? -1 : 1;
    }
    return 0;
}

big *big_add(big *a, big *b)
{
    int n = (a->n > b->n ? a->n : b->n) + 1;
    big *c = big_new(n);
    int carry = 0;
    int i;
    for (i = 0; i < n; i++) {
        int s = carry;
        if (i < a->n) s += a->d[i];
        if (i < b->n) s += b->d[i];
        c->d[i] = s % BASE;
        carry = s / BASE;
    }
    while (c->n > 1 && c->d[c->n - 1] == 0) c->n--;
    return c;
}

/* a - b, assuming a >= b */
big *big_sub(big *a, big *b)
{
    big *c = big_new(a->n);
    int borrow = 0;
    int i;
    for (i = 0; i < a->n; i++) {
        int s = a->d[i] - borrow;
        if (i < b->n) s -= b->d[i];
        if (s < 0) { s += BASE; borrow = 1; } else borrow = 0;
        c->d[i] = s;
    }
    while (c->n > 1 && c->d[c->n - 1] == 0) c->n--;
    return c;
}

big *big_mul_small(big *a, int m)
{
    big *c = big_new(a->n + 4);
    int carry = 0;
    int i;
    for (i = 0; i < a->n; i++) {
        int s = a->d[i] * m + carry;
        c->d[i] = s % BASE;
        carry = s / BASE;
    }
    i = a->n;
    while (carry) {
        c->d[i] = carry % BASE;
        carry = carry / BASE;
        i++;
    }
    c->n = i > a->n ? i : a->n;
    while (c->n > 1 && c->d[c->n - 1] == 0) c->n--;
    return c;
}

big *big_mul(big *a, big *b)
{
    big *c = big_new(a->n + b->n + 1);
    int i, j;
    for (i = 0; i < c->n; i++) c->d[i] = 0;
    for (i = 0; i < a->n; i++) {
        int carry = 0;
        int ai = a->d[i];
        if (ai == 0) continue;
        for (j = 0; j < b->n; j++) {
            int s = c->d[i + j] + ai * b->d[j] + carry;
            c->d[i + j] = s % BASE;
            carry = s / BASE;
        }
        while (carry) {
            int s = c->d[i + j] + carry;
            c->d[i + j] = s % BASE;
            carry = s / BASE;
            j++;
        }
    }
    while (c->n > 1 && c->d[c->n - 1] == 0) c->n--;
    return c;
}

/* divide by a small int, return quotient; *rem gets the remainder */
big *big_div_small(big *a, int m, int *rem)
{
    big *c = big_new(a->n);
    int r = 0;
    int i;
    for (i = a->n - 1; i >= 0; i--) {
        int cur = r * BASE + a->d[i];
        c->d[i] = cur / m;
        r = cur % m;
    }
    while (c->n > 1 && c->d[c->n - 1] == 0) c->n--;
    *rem = r;
    return c;
}

big *big_mod(big *a, big *m)
{
    /* Repeated shifted subtraction (schoolbook); adequate for the
     * small moduli the driver uses, and very allocation intensive. */
    big *r = a;
    while (big_cmp(r, m) >= 0) {
        big *shifted = m;
        big *next;
        while (1) {
            next = big_mul_small(shifted, 2);
            if (big_cmp(next, r) > 0) break;
            shifted = next;
        }
        r = big_sub(r, shifted);
    }
    return r;
}

big *big_gcd(big *a, big *b)
{
    while (!big_is_zero(b)) {
        big *r = big_mod(a, b);
        a = b;
        b = r;
    }
    return a;
}

char *big_to_string(big *a)
{
    char *s = (char *) GC_malloc(a->n * 4 + 2);
    int pos = 0;
    int i;
    int lead = 1;
    for (i = a->n - 1; i >= 0; i--) {
        int v = a->d[i];
        int div = 1000;
        while (div > 0) {
            int digit = (v / div) % 10;
            if (digit != 0 || !lead || (i == 0 && div == 1)) {
                s[pos++] = '0' + digit;
                lead = 0;
            }
            div = div / 10;
        }
    }
    s[pos] = 0;
    return s;
}

/* Trial division for small factors; returns the factor or 0. */
int trial_factor(big *n, int limit)
{
    int p;
    for (p = 2; p <= limit; p++) {
        int rem;
        big_div_small(n, p, &rem);
        if (rem == 0) return p;
    }
    return 0;
}

/* Pollard rho step: x = (x*x + c) mod n, in bignums. */
big *rho_step(big *x, big *n, int c)
{
    big *sq = big_mul(x, x);
    big *plus = big_add(sq, big_from_int(c));
    return big_mod(plus, n);
}

int pollard_rho(big *n, int c, int max_iter)
{
    big *x = big_from_int(2);
    big *y = big_from_int(2);
    big *one = big_from_int(1);
    int i;
    for (i = 0; i < max_iter; i++) {
        big *diff;
        big *g;
        x = rho_step(x, n, c);
        y = rho_step(rho_step(y, n, c), n, c);
        diff = big_cmp(x, y) >= 0 ? big_sub(x, y) : big_sub(y, x);
        if (big_is_zero(diff)) return 0;
        g = big_gcd(n, diff);
        if (big_cmp(g, one) != 0 && big_cmp(g, n) != 0) {
            return big_to_int(g);
        }
    }
    return 0;
}

int factor_one(int value)
{
    big *n = big_from_int(value);
    int f = trial_factor(n, 30);
    if (f != 0) return f;
    f = pollard_rho(n, 1, 40);
    if (f == 0) f = pollard_rho(n, 3, 40);
    return f;
}

int main(void)
{
    /* A mix of composites: products of two primes, squares, smooth. */
    int inputs[10];
    int i;
    int check = 0;
    inputs[0] = 91;        /* 7 * 13  */
    inputs[1] = 8051;      /* 83 * 97 */
    inputs[2] = 10403;     /* 101 * 103 */
    inputs[3] = 121;       /* 11^2 */
    inputs[4] = 31861;     /* 151 * 211 */
    inputs[5] = 2021;      /* 43 * 47 */
    inputs[6] = 49141;     /* 157 * 313 */
    inputs[7] = 4087;      /* 61 * 67 */
    inputs[8] = 9409;      /* 97^2 */
    inputs[9] = 32761;     /* 181^2, needs rho */

    for (i = 0; i < 10; i++) {
        int f = factor_one(inputs[i]);
        check = check * 7 + f % 1000;
        printf("cfrac: %d has factor %d\n", inputs[i], f);
    }
    printf("cfrac: check=%d allocs=%d\n", check, big_allocs);
    return check % 251;
}
