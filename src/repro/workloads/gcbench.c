/* gcbench -- Boehm's classic artificial garbage collection benchmark
 * (John Ellis & Pete Kovac's "GCBench", as distributed with the Boehm
 * collector), scaled down.  Not part of the paper's tables; used by the
 * test suite and examples to exercise the collector under a classic
 * allocation pattern:
 *
 *   - build complete binary trees top-down and bottom-up,
 *   - keep a long-lived tree and a long-lived array alive throughout,
 *   - drop short-lived trees so collections have real work.
 */

struct tree_node {
    struct tree_node *left;
    struct tree_node *right;
    int i;
    int j;
};
typedef struct tree_node tree_node;

#define MIN_DEPTH 2
#define MAX_DEPTH 7
#define LONG_LIVED_DEPTH 7
#define ARRAY_WORDS 500

int nodes_made = 0;

tree_node *new_node(tree_node *l, tree_node *r)
{
    tree_node *n = (tree_node *) GC_malloc(sizeof(tree_node));
    n->left = l;
    n->right = r;
    n->i = 0;
    n->j = 0;
    nodes_made++;
    return n;
}

int tree_size(int depth)
{
    return (1 << (depth + 1)) - 1;
}

/* Build bottom-up: children first. */
tree_node *make_tree(int depth)
{
    if (depth <= 0) return new_node(0, 0);
    return new_node(make_tree(depth - 1), make_tree(depth - 1));
}

/* Build top-down: parents first (populates in place). */
void populate(int depth, tree_node *node)
{
    if (depth <= 0) return;
    node->left = new_node(0, 0);
    node->right = new_node(0, 0);
    populate(depth - 1, node->left);
    populate(depth - 1, node->right);
}

int check_tree(tree_node *node)
{
    if (node == 0) return 0;
    return 1 + check_tree(node->left) + check_tree(node->right);
}

void time_construction(int depth)
{
    int i;
    int count = tree_size(MAX_DEPTH) / tree_size(depth);
    if (count < 1) count = 1;
    for (i = 0; i < count; i++) {
        tree_node *top_down = new_node(0, 0);
        tree_node *bottom_up;
        populate(depth, top_down);
        bottom_up = make_tree(depth);
        if (check_tree(top_down) != tree_size(depth)) exit(1);
        if (check_tree(bottom_up) != tree_size(depth)) exit(2);
        /* both trees die here */
    }
}

int main(void)
{
    tree_node *long_lived;
    int *array;
    int depth;
    int i;

    /* long-lived data that every collection must preserve */
    long_lived = new_node(0, 0);
    populate(LONG_LIVED_DEPTH, long_lived);
    array = (int *) GC_malloc(ARRAY_WORDS * sizeof(int));
    for (i = 0; i < ARRAY_WORDS; i++) array[i] = i * 3;

    for (depth = MIN_DEPTH; depth <= MAX_DEPTH; depth = depth + 2) {
        time_construction(depth);
    }

    if (check_tree(long_lived) != tree_size(LONG_LIVED_DEPTH)) return 3;
    for (i = 0; i < ARRAY_WORDS; i++) {
        if (array[i] != i * 3) return 4;
    }
    printf("gcbench: nodes=%d long_lived=%d\n",
           nodes_made, check_tree(long_lived));
    return 0;
}
