"""``repro chaos`` — prove the harness survives its own hostile windows.

    python -m repro chaos --seed 0 --workers 4
    python -m repro chaos --faults 'worker_crash@shard2,cache_corrupt@3,\
pipe_drop@0.1,slow_worker@shard1:5x' --suite bench --json

Two phases over one throwaway cache root:

1. **Reference**: the bench slowdown table and/or a fuzz campaign run
   fault-free (this also warms the content-addressed caches).
2. **Faulted**: the same matrix under the seeded fault plan, with
   tracing on so every recovery action is counted.

The gate is byte-identity: workers may die, pipes may rot, cache reads
may corrupt — the merged reports must not change by a single byte,
because every task is a pure function of its payload and the engine
merges in canonical order.  Exit 0 iff every suite is identical (and
the faulted run completed); the recovery counters (retries, worker
deaths, quarantines, breaker trips, degraded flag) are printed from
the obs summary, or emitted in a ``repro-chaos/1`` JSON envelope.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import shutil
import sys
import tempfile

from ..api import envelopes
from ..api.build import TABLE_KEYS
from ..cliutil import add_report_flags
from ..exec import cache as exec_cache
from ..exec import engine
from ..obs import runtime as obs_runtime
from ..obs.report import summarize
from . import inject
from .plan import FaultSpecError, parse_faults

#: Covers all four seams: worker death, cache corruption, pipe loss,
#: and a slow worker (exercising reassignment under skew).
DEFAULT_FAULTS = ("worker_crash@shard1,cache_corrupt@2-4,"
                  "pipe_drop@0.05,slow_worker@shard0:2x")
CHAOS_SCHEMA = envelopes.CHAOS


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _bench_bytes(args: argparse.Namespace) -> str:
    from ..api import Toolchain
    from ..bench.tables import render_slowdown_table
    from ..machine.models import MODELS
    tc = Toolchain(model=args.model, workers=args.workers)
    workloads = (tuple(args.workloads.split(","))
                 if args.workloads else None)
    rows = tc.bench(workloads)
    return render_slowdown_table(
        rows, TABLE_KEYS[args.model], f"Slowdowns on {MODELS[args.model].name}")


def _fuzz_bytes(args: argparse.Namespace) -> str:
    from ..api import Toolchain
    tc = Toolchain(model=args.model, workers=args.workers)
    return tc.fuzz(seed=args.seed, iters=args.iters).report()


_SUITES = {"bench": _bench_bytes, "fuzz": _fuzz_bytes}


def cmd_chaos(args: argparse.Namespace) -> int:
    try:
        plan = parse_faults(args.faults, seed=args.seed)
    except FaultSpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    suites = tuple(_SUITES) if args.suite == "both" else (args.suite,)
    root = tempfile.mkdtemp(prefix="repro-chaos-")
    report = envelopes.make(envelopes.CHAOS, {
        "seed": args.seed, "workers": args.workers,
        "faults": plan.to_json(), "suites": {}, "ok": True})
    try:
        with exec_cache.cache_context(*exec_cache.open_caches(root)):
            reference = {name: _SUITES[name](args) for name in suites}

        obs_runtime.enable_tracing()
        metrics_out = getattr(args, "metrics_out", None)
        obs_runtime.enable_metrics(out=metrics_out)
        faulted: dict[str, str] = {}
        error: str | None = None
        metrics_snapshot: dict = {}
        try:
            with inject.plan_context(plan), \
                 exec_cache.cache_context(*exec_cache.open_caches(root)), \
                 engine.policy_context(task_timeout=args.task_timeout):
                for name in suites:
                    try:
                        faulted[name] = _SUITES[name](args)
                    except Exception as exc:  # resilience failed outright
                        error = f"{name}: {type(exc).__name__}: {exc}"
                        break
                cache_stats = {
                    kind: cache.stats.to_dict() for kind, cache
                    in exec_cache.active_caches_by_kind().items()}
            events = [e.to_json()
                      for e in obs_runtime.get_tracer().sorted_events()]
            metrics = obs_runtime.get_metrics()
            if metrics is not None:
                metrics.flush()
                metrics_snapshot = metrics.to_dict()
        finally:
            obs_runtime.reset()
    finally:
        shutil.rmtree(root, ignore_errors=True)

    summary = summarize(events)
    report["resil"] = summary.get("resil", {})
    report["cache"] = cache_stats
    report["metrics"] = metrics_snapshot
    if metrics_out:
        print(f"! metrics written to {metrics_out}", file=sys.stderr)
    if error is not None:
        report["ok"] = False
        report["error"] = error
    for name in suites:
        ref = reference[name]
        got = faulted.get(name)
        identical = got == ref
        report["suites"][name] = {
            "sha256": _sha(ref), "identical": identical,
            "faulted_sha256": None if got is None else _sha(got)}
        if not identical:
            report["ok"] = False

    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0 if report["ok"] else 1

    print(f"chaos: seed {args.seed}, {args.workers} workers, "
          f"faults {plan.describe()}")
    for name in suites:
        cell = report["suites"][name]
        verdict = ("identical" if cell["identical"]
                   else "MISMATCH" if cell["faulted_sha256"] else "FAILED")
        print(f"  {name:5s} {verdict}  (reference sha256 "
              f"{cell['sha256'][:16]})")
    r = report["resil"]
    if r:
        print(f"  resil retries={r['retries']} "
              f"worker_deaths={r['worker_deaths']} "
              f"quarantined={r['quarantined']} "
              f"dropped={r['dropped_messages']} "
              f"breaker_trips={r['breaker_trips']} "
              f"write_errors={r['cache_write_errors']} "
              f"degraded={'yes' if r['degraded'] else 'no'}")
    else:
        print("  resil (no recovery events — did the plan fire?)")
    if error is not None:
        print(f"  error: {error}", file=sys.stderr)
    print("chaos: OK — reports byte-identical under faults"
          if report["ok"] else "chaos: FAILED", file=sys.stderr)
    return 0 if report["ok"] else 1


def add_chaos_parser(sub) -> None:
    p = sub.add_parser(
        "chaos",
        help="run bench/fuzz under a fault plan; gate on byte-identity")
    p.add_argument("--seed", type=int, default=0,
                   help="fault-plan seed (also the fuzz campaign seed)")
    p.add_argument("--faults", default=DEFAULT_FAULTS,
                   help=f"fault spec (default: {DEFAULT_FAULTS})")
    p.add_argument("--suite", choices=("both", "bench", "fuzz"),
                   default="both")
    add_report_flags(p, json_schema=envelopes.CHAOS, workers_default=4)
    p.add_argument("--model", default="ss10")
    p.add_argument("--workloads", default="",
                   help="comma-separated bench workloads (default: all)")
    p.add_argument("--iters", type=int, default=15,
                   help="fuzz iterations per phase")
    p.add_argument("--task-timeout", type=float, default=30.0,
                   help="per-task hang timeout under faults (seconds)")
    p.set_defaults(fn=cmd_chaos)
