"""Deterministic fault injection and resilience machinery.

`plan` parses seeded fault plans; `inject` is the process-wide seam
registry the engine/caches/driver consult; `cli` is ``repro chaos``.
"""

from .inject import (active_plan, install, plan_context,  # noqa: F401
                     uninstall)
from .plan import (Fault, FaultPlan, FaultSpecError,  # noqa: F401
                   parse_fault, parse_faults)

__all__ = [
    "Fault",
    "FaultPlan",
    "FaultSpecError",
    "parse_fault",
    "parse_faults",
    "install",
    "uninstall",
    "active_plan",
    "plan_context",
]
