"""Deterministic fault plans — *what* to break, decided up front.

A :class:`FaultPlan` is parsed from a compact spec string and a seed::

    parse_faults("worker_crash@shard2,cache_corrupt@3,pipe_drop@0.1,"
                 "slow_worker@shard1:5x", seed=0)

Every decision the plan makes is a pure function of (spec, seed,
context) — no wall clock, no ambient randomness — so a chaos run is
exactly reproducible from its command line, and the engine's recovery
from it can be asserted byte-for-byte against the fault-free run.

Grammar (comma-separated items, each ``kind@target[:param]``):

=============================  =============================================
``worker_crash@shard<S>[:K]``  the round-0 worker of shard S calls
                               ``os._exit`` after reporting K tasks
                               (default 1) — death mid-shard
``poison@task<N>`` /           any worker *starting* payload index N dies
``poison@<N>``                 immediately, on every attempt including the
                               quarantine rerun (a genuinely poisonous task)
``task_hang@shard<S>[:Ts]``    the first task started in shard S (round 0)
                               sleeps T seconds (default 30) — a hang the
                               per-task timeout must catch
``slow_worker@shard<S>:Fx``    every task in shard S (round 0) sleeps
                               F x 0.01s before running; ``:Ts`` gives a
                               literal per-task delay in seconds
``compile_hang@shard<S>[:Ts]`` like task_hang, but fired from the compile
``compile_slow@shard<S>:Fx``   driver seam — the stall happens mid-pipeline,
                               not between tasks
``pipe_drop@<P>``              each worker-to-parent message is dropped with
                               probability P (seeded per message)
``pipe_garbage@<P>``           ... or replaced with unpicklable garbage bytes
``cache_corrupt@<N>[-M]``      the Nth..Mth successful cache-entry reads in a
                               process hand back corrupted bytes (1-based)
``cache_enospc@<N>[-M]``       the Nth..Mth cache writes fail with ENOSPC
=============================  =============================================

Shard targets refer to round-0 shard numbering (payload index i lives on
shard ``i % workers``); worker-seam faults are armed only for attempt 0,
so bounded retries converge, while ``poison`` is armed on every attempt
— that is the shape quarantine exists for.  Pipe faults are armed on
every pool attempt but never in pinned (quarantine / serial-fallback)
workers, which are the engine's last resort.  Cache faults count reads/
writes per process.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

SLOW_UNIT_S = 0.01  # one "x" of slow_worker / compile_slow
DEFAULT_HANG_S = 30.0

_KINDS = ("worker_crash", "poison", "task_hang", "slow_worker",
          "compile_hang", "compile_slow", "pipe_drop", "pipe_garbage",
          "cache_corrupt", "cache_enospc")


class FaultSpecError(ValueError):
    """A fault spec string could not be parsed."""


@dataclass(frozen=True)
class Fault:
    """One parsed fault clause."""

    kind: str
    shard: int | None = None  # worker/pipe seam target
    task: int | None = None   # poison target (payload index)
    after: int = 1            # worker_crash: tasks reported before exit
    delay_s: float = 0.0      # slow/hang seams
    prob: float = 0.0         # pipe seams
    start: int = 0            # cache seams: 1-based inclusive range
    end: int = 0

    def describe(self) -> str:
        if self.kind == "worker_crash":
            return f"worker_crash@shard{self.shard}:{self.after}"
        if self.kind == "poison":
            return f"poison@task{self.task}"
        if self.kind in ("task_hang", "slow_worker",
                         "compile_hang", "compile_slow"):
            return f"{self.kind}@shard{self.shard}:{self.delay_s}s"
        if self.kind in ("pipe_drop", "pipe_garbage"):
            return f"{self.kind}@{self.prob}"
        return f"{self.kind}@{self.start}-{self.end}"

    def to_json(self) -> dict:
        d = {"kind": self.kind}
        for name in ("shard", "task"):
            if getattr(self, name) is not None:
                d[name] = getattr(self, name)
        if self.kind == "worker_crash":
            d["after"] = self.after
        if self.delay_s:
            d["delay_s"] = self.delay_s
        if self.prob:
            d["prob"] = self.prob
        if self.start:
            d["reads" if self.kind == "cache_corrupt" else "writes"] = \
                [self.start, self.end]
        return d


def _hash01(seed: int, *parts) -> float:
    """Deterministic uniform [0, 1) from (seed, context)."""
    blob = ":".join(str(p) for p in (seed,) + parts).encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big") / 2 ** 64


def _parse_shard(text: str, item: str) -> int:
    if not text.startswith("shard"):
        raise FaultSpecError(f"{item!r}: expected shard<N> target")
    try:
        return int(text[5:])
    except ValueError:
        raise FaultSpecError(f"{item!r}: bad shard number") from None


def _parse_delay(text: str, item: str) -> float:
    """``5x`` (units of SLOW_UNIT_S) or ``0.25s`` / bare seconds."""
    try:
        if text.endswith("x"):
            return float(text[:-1]) * SLOW_UNIT_S
        if text.endswith("s"):
            return float(text[:-1])
        return float(text)
    except ValueError:
        raise FaultSpecError(f"{item!r}: bad delay {text!r}") from None


def _parse_range(text: str, item: str) -> tuple[int, int]:
    lo, _, hi = text.partition("-")
    try:
        start = int(lo)
        end = int(hi) if hi else start
    except ValueError:
        raise FaultSpecError(f"{item!r}: bad occurrence range") from None
    if start < 1 or end < start:
        raise FaultSpecError(f"{item!r}: range must be 1-based and ordered")
    return start, end


def parse_fault(item: str) -> Fault:
    item = item.strip()
    kind, sep, rest = item.partition("@")
    if not sep or kind not in _KINDS:
        raise FaultSpecError(
            f"{item!r}: expected kind@target with kind in {_KINDS}")
    if kind == "worker_crash":
        target, _, after = rest.partition(":")
        return Fault(kind, shard=_parse_shard(target, item),
                     after=int(after) if after else 1)
    if kind == "poison":
        target = rest[4:] if rest.startswith("task") else rest
        try:
            return Fault(kind, task=int(target))
        except ValueError:
            raise FaultSpecError(f"{item!r}: bad task index") from None
    if kind in ("task_hang", "compile_hang"):
        target, _, delay = rest.partition(":")
        return Fault(kind, shard=_parse_shard(target, item),
                     delay_s=_parse_delay(delay, item) if delay
                     else DEFAULT_HANG_S)
    if kind in ("slow_worker", "compile_slow"):
        target, sep2, delay = rest.partition(":")
        if not sep2:
            raise FaultSpecError(f"{item!r}: {kind} needs a :<F>x factor "
                                 f"or :<T>s delay")
        return Fault(kind, shard=_parse_shard(target, item),
                     delay_s=_parse_delay(delay, item))
    if kind in ("pipe_drop", "pipe_garbage"):
        try:
            prob = float(rest)
        except ValueError:
            raise FaultSpecError(f"{item!r}: bad probability") from None
        if not 0.0 <= prob <= 1.0:
            raise FaultSpecError(f"{item!r}: probability outside [0, 1]")
        return Fault(kind, prob=prob)
    start, end = _parse_range(rest, item)  # cache_corrupt / cache_enospc
    return Fault(kind, start=start, end=end)


@dataclass
class FaultPlan:
    """A seeded set of faults plus the pure decision functions the
    injection seams consult (see :mod:`repro.resil.inject`)."""

    seed: int = 0
    faults: list[Fault] = field(default_factory=list)
    spec: str = ""

    # -- worker seams ------------------------------------------------------

    def crash_after(self, shard: int, attempt: int) -> int | None:
        """Tasks the shard's worker may report before exiting (None:
        no crash armed for this worker)."""
        if attempt != 0:
            return None
        hits = [f.after for f in self.faults
                if f.kind == "worker_crash" and f.shard == shard]
        return min(hits) if hits else None

    def poison_tasks(self) -> frozenset[int]:
        return frozenset(f.task for f in self.faults if f.kind == "poison")

    def task_delay(self, shard: int, attempt: int, started: int,
                   seam: str = "task") -> float:
        """Injected sleep before the ``started``-th task (1-based) of
        this worker; hangs fire only on the first."""
        if attempt != 0:
            return 0.0
        slow_kind = "slow_worker" if seam == "task" else "compile_slow"
        hang_kind = "task_hang" if seam == "task" else "compile_hang"
        delay = sum(f.delay_s for f in self.faults
                    if f.kind == slow_kind and f.shard == shard)
        if started == 1:
            delay += sum(f.delay_s for f in self.faults
                         if f.kind == hang_kind and f.shard == shard)
        return delay

    # -- pipe seam ---------------------------------------------------------

    def has_pipe_faults(self) -> bool:
        return any(f.kind in ("pipe_drop", "pipe_garbage")
                   for f in self.faults)

    def pipe_action(self, shard: int, attempt: int, n: int) -> str | None:
        """Fate of the worker's ``n``-th message: None | 'drop' |
        'garbage'.  Seeded per (shard, attempt, n) — deterministic."""
        if attempt < 0:  # pinned (quarantine / fallback) workers are spared
            return None
        for f in self.faults:
            if f.kind in ("pipe_drop", "pipe_garbage") and f.prob > 0.0:
                if _hash01(self.seed, f.kind, shard, attempt, n) < f.prob:
                    return "drop" if f.kind == "pipe_drop" else "garbage"
        return None

    # -- cache seams -------------------------------------------------------

    def corrupt_read(self, n: int) -> bool:
        return any(f.kind == "cache_corrupt" and f.start <= n <= f.end
                   for f in self.faults)

    def fail_write(self, n: int) -> bool:
        return any(f.kind == "cache_enospc" and f.start <= n <= f.end
                   for f in self.faults)

    # -- reporting ---------------------------------------------------------

    def describe(self) -> str:
        return ",".join(f.describe() for f in self.faults)

    def to_json(self) -> dict:
        return {"seed": self.seed, "spec": self.spec,
                "faults": [f.to_json() for f in self.faults]}


def parse_faults(spec: str, seed: int = 0) -> FaultPlan:
    """Parse a comma-separated fault spec into a seeded plan."""
    faults = [parse_fault(item) for item in spec.split(",") if item.strip()]
    if not faults:
        raise FaultSpecError(f"empty fault spec {spec!r}")
    return FaultPlan(seed=seed, faults=faults, spec=spec)
