"""Process-wide fault-injection seams.

Mirrors :mod:`repro.obs.runtime`: a module-level registry holds the
active :class:`~repro.resil.plan.FaultPlan` (usually none), and the
execution engine, caches, and compile driver call tiny hook functions
at their fault seams.  With no plan installed every hook is a single
``is None`` check — the resilience layer costs nothing when it is not
being exercised (``benchmarks/check_resil_overhead.py`` gates this).

The registry is inherited by forked workers; :func:`worker_started`
tells the seams which shard/attempt this process is so the plan's pure
decision functions can target specific workers.  In the parent process
(``_shard is None``) the worker seams never fire — an injected
``os._exit`` must only ever kill a child.

Stdlib-only leaf (plus :mod:`repro.resil.plan` and the obs leaves):
importable from the engine and caches without cycles.

Injected faults that the process *survives* (delays, pipe drops/
garbage, cache corruption, ENOSPC) are counted on the active metrics
registry as ``resil.faults_injected{kind=...}``; poison/crash faults
``os._exit`` immediately, so their counters could never ship home and
they are deliberately not counted.
"""

from __future__ import annotations

import contextlib
import errno
import os
import time

from ..obs import runtime as obs_runtime
from .plan import FaultPlan

_plan: FaultPlan | None = None
_shard: int | None = None   # None = parent / inline execution
_attempt: int = 0
_tasks_started = 0
_cache_reads = 0
_cache_writes = 0

POISON_EXIT = 86
CRASH_EXIT = 87
_GARBAGE = b"\xde\xad\xbe\xef not a pickle \x00\x01\x02"


def _count_fault(kind: str) -> None:
    """Record one survivable injected fault on the metrics registry
    (det=False: fault schedules depend on shard/attempt timing)."""
    metrics = obs_runtime.get_metrics()
    if metrics is not None:
        metrics.counter("resil.faults_injected", det=False, kind=kind).inc()


def install(plan: FaultPlan) -> None:
    global _plan, _shard, _attempt, _tasks_started, _cache_reads, _cache_writes
    _plan = plan
    _shard = None
    _attempt = 0
    _tasks_started = _cache_reads = _cache_writes = 0


def uninstall() -> None:
    global _plan, _shard
    _plan = None
    _shard = None


def active_plan() -> FaultPlan | None:
    return _plan


@contextlib.contextmanager
def plan_context(plan: FaultPlan):
    """Install ``plan`` for the duration of the block."""
    previous = _plan
    install(plan)
    try:
        yield plan
    finally:
        if previous is None:
            uninstall()
        else:
            install(previous)


def worker_started(shard: int, attempt: int) -> None:
    """Called first thing in a forked worker: pins the seams to this
    worker's identity and resets per-process counters."""
    global _shard, _attempt, _tasks_started, _cache_reads, _cache_writes
    if _plan is None:
        return
    _shard = shard
    _attempt = attempt
    _tasks_started = _cache_reads = _cache_writes = 0


# -- engine seams ----------------------------------------------------------


def on_task_start(index: int) -> None:
    """Worker is about to run payload ``index``: poison kills the
    process outright; slow/hang faults sleep.  No-op in the parent."""
    global _tasks_started
    if _plan is None or _shard is None:
        return
    _tasks_started += 1
    if index in _plan.poison_tasks():
        os._exit(POISON_EXIT)
    delay = _plan.task_delay(_shard, _attempt, _tasks_started, seam="task")
    if delay > 0.0:
        _count_fault("task_slow")
        time.sleep(delay)


def on_task_reported(sent: int) -> None:
    """Worker has streamed ``sent`` results so far: an armed
    worker_crash exits once its quota is reported."""
    if _plan is None or _shard is None:
        return
    quota = _plan.crash_after(_shard, _attempt)
    if quota is not None and sent >= quota:
        os._exit(CRASH_EXIT)


def wrap_send(conn):
    """Return the worker's send callable; with pipe faults armed, a
    wrapper that drops or garbles messages per the plan's seeded
    per-message decisions."""
    if _plan is None or _shard is None or not _plan.has_pipe_faults():
        return conn.send
    plan, shard, attempt = _plan, _shard, _attempt
    counter = [0]

    def send(message):
        counter[0] += 1
        action = plan.pipe_action(shard, attempt, counter[0])
        if action == "drop":
            _count_fault("pipe_drop")
            return
        if action == "garbage":
            _count_fault("pipe_garbage")
            conn.send_bytes(_GARBAGE)
            return
        conn.send(message)

    return send


# -- driver seam -----------------------------------------------------------


def compile_checkpoint() -> None:
    """Called from ``machine.driver.compile_source``: a stall injected
    mid-pipeline rather than between tasks."""
    if _plan is None or _shard is None:
        return
    delay = _plan.task_delay(_shard, _attempt, max(_tasks_started, 1),
                             seam="compile")
    if delay > 0.0:
        _count_fault("compile_slow")
        time.sleep(delay)


# -- cache seams -----------------------------------------------------------


def filter_cache_read(kind: str, blob: bytes) -> bytes:
    """Pass a just-read cache entry through the plan; a corrupt_read
    hit flips bytes so the checksum verification fails."""
    global _cache_reads
    if _plan is None:
        return blob
    _cache_reads += 1
    if _plan.corrupt_read(_cache_reads):
        _count_fault("cache_corrupt")
        return bytes(b ^ 0xFF for b in blob[:64]) + blob[64:]
    return blob


def check_cache_write(kind: str) -> None:
    """Raise ENOSPC for writes the plan marks as failing."""
    global _cache_writes
    if _plan is None:
        return
    _cache_writes += 1
    if _plan.fail_write(_cache_writes):
        _count_fault("cache_enospc")
        raise OSError(errno.ENOSPC, "injected: no space left on device")
