"""Flat byte-addressed simulated memory.

Addresses are plain Python ints in a 32-bit space, matching the paper's
ILP32 machines.  Storage is sparse (per-page bytearrays) so the address
layout can mirror a real process: statics low, heap in the middle, the
stack growing down from high addresses.

Both the VM (registers, stack, globals) and the collector (heap pages,
conservative scanning) operate on one :class:`Memory` instance — this is
what makes "any bit pattern that might represent the address of a heap
object" scannable, the defining property of a conservative collector.

All bulk helpers (``write_bytes``/``read_bytes``/``fill``/
``read_cstring``) work a page slice at a time rather than a byte at a
time: allocation zeroing, string builtins, and conservative root scans
all sit on these paths.
"""

from __future__ import annotations

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT  # 4 KiB, as in the Boehm collector
PAGE_MASK = PAGE_SIZE - 1

ADDRESS_BITS = 32
ADDRESS_LIMIT = 1 << ADDRESS_BITS

# Default process layout.
STATIC_BASE = 0x0001_0000
HEAP_BASE = 0x0010_0000
STACK_TOP = 0x0800_0000


class MemoryFault(Exception):
    """Access to an unmapped address or out-of-range width."""

    def __init__(self, addr: int, why: str = "unmapped address"):
        self.addr = addr
        super().__init__(f"{why}: 0x{addr:08x}")


class Memory:
    """Sparse paged memory with little-endian typed accessors."""

    def __init__(self):
        self._pages: dict[int, bytearray] = {}

    # -- mapping ----------------------------------------------------------

    def map_page(self, addr: int) -> bytearray:
        """Ensure the page containing ``addr`` exists; return it."""
        idx = addr >> PAGE_SHIFT
        page = self._pages.get(idx)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[idx] = page
        return page

    def map_range(self, start: int, size: int) -> None:
        for idx in range(start >> PAGE_SHIFT, (start + size - 1 >> PAGE_SHIFT) + 1):
            if idx not in self._pages:
                self._pages[idx] = bytearray(PAGE_SIZE)

    def unmap_page(self, addr: int) -> None:
        self._pages.pop(addr >> PAGE_SHIFT, None)

    def is_mapped(self, addr: int) -> bool:
        return (addr >> PAGE_SHIFT) in self._pages

    @property
    def mapped_pages(self) -> int:
        return len(self._pages)

    # -- typed access -----------------------------------------------------

    def load(self, addr: int, width: int = 4, signed: bool = False) -> int:
        """Load ``width`` bytes little-endian.  Crossing a page boundary
        is supported (needed for conservative scans of unaligned data)."""
        off = addr & PAGE_MASK
        if off + width <= PAGE_SIZE:
            if addr < 0 or addr + width > ADDRESS_LIMIT:
                raise MemoryFault(addr, "address out of range")
            page = self._pages.get(addr >> PAGE_SHIFT)
            if page is None:
                raise MemoryFault(addr)
            raw = page[off : off + width]
        else:
            raw = bytes(self.load(addr + i, 1) for i in range(width))
        return int.from_bytes(raw, "little", signed=signed)

    def store(self, addr: int, value: int, width: int = 4) -> None:
        off = addr & PAGE_MASK
        if off + width > PAGE_SIZE:
            data = (value % (1 << (8 * width))).to_bytes(width, "little")
            for i, b in enumerate(data):
                self.store(addr + i, b, 1)
            return
        if addr < 0 or addr + width > ADDRESS_LIMIT:
            raise MemoryFault(addr, "address out of range")
        page = self._pages.get(addr >> PAGE_SHIFT)
        if page is None:
            raise MemoryFault(addr)
        page[off : off + width] = (value % (1 << (8 * width))).to_bytes(width, "little")

    def load_word(self, addr: int) -> int:
        return self.load(addr, 4)

    def store_word(self, addr: int, value: int) -> None:
        self.store(addr, value, 4)

    # -- bulk helpers -------------------------------------------------------

    def _page_at(self, addr: int) -> bytearray:
        if addr < 0 or addr >= ADDRESS_LIMIT:
            raise MemoryFault(addr, "address out of range")
        page = self._pages.get(addr >> PAGE_SHIFT)
        if page is None:
            raise MemoryFault(addr)
        return page

    def write_bytes(self, addr: int, data: bytes) -> None:
        n = len(data)
        i = 0
        while i < n:
            a = addr + i
            page = self._page_at(a)
            off = a & PAGE_MASK
            take = min(PAGE_SIZE - off, n - i)
            page[off : off + take] = data[i : i + take]
            i += take

    def read_bytes(self, addr: int, size: int) -> bytes:
        chunks: list[bytes] = []
        i = 0
        while i < size:
            a = addr + i
            page = self._page_at(a)
            off = a & PAGE_MASK
            take = min(PAGE_SIZE - off, size - i)
            chunks.append(bytes(page[off : off + take]))
            i += take
        return b"".join(chunks)

    def read_cstring(self, addr: int, limit: int = 1 << 16) -> str:
        chunks: list[bytes] = []
        a = addr
        remaining = limit
        while remaining > 0:
            page = self._page_at(a)
            off = a & PAGE_MASK
            take = min(PAGE_SIZE - off, remaining)
            chunk = page[off : off + take]
            z = chunk.find(0)
            if z >= 0:
                chunks.append(bytes(chunk[:z]))
                break
            chunks.append(bytes(chunk))
            a += take
            remaining -= take
        return b"".join(chunks).decode("latin-1")

    def fill(self, addr: int, size: int, byte: int = 0) -> None:
        i = 0
        while i < size:
            a = addr + i
            page = self._page_at(a)
            off = a & PAGE_MASK
            take = min(PAGE_SIZE - off, size - i)
            page[off : off + take] = bytes([byte]) * take
            i += take
