"""Conservative mark-sweep collector over the simulated memory.

Semantics follow the paper's "Compiler Safety Problem Statement":

* GC-roots are the machine stack, registers, and statically allocated
  memory; the collector preserves every object reachable from a GC-root,
  possibly through heap-resident pointers.
* Any address corresponding to some place *inside* a heap object is
  recognized as a valid pointer (interior pointers), the default
  configuration of [Boehm95].
* The "Extensions" section's alternative mode — interior pointers valid
  only when they originate from the stack or registers — is available
  via ``interior_from_roots_only``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable, Iterable

from .heap import Heap, PageDescriptor
from .memory import HEAP_BASE, Memory, PAGE_MASK, PAGE_SHIFT, PAGE_SIZE
from ..cfront.ctypes import WORD_SIZE
from ..obs import clock as obs_clock
from ..obs import runtime as obs_runtime


class GCCheckError(Exception):
    """A pointer-arithmetic check (GC_same_obj family) failed."""


@dataclass
class GCStats:
    collections: int = 0
    bytes_allocated: int = 0
    objects_allocated: int = 0
    objects_reclaimed: int = 0
    bytes_reclaimed: int = 0
    marked_last_gc: int = 0
    checks_performed: int = 0
    # Live-set snapshot, refreshed after every sweep.
    live_bytes: int = 0
    live_objects: int = 0
    # Per-kind check counters (checks_performed is the sum).
    same_obj_checks: int = 0
    incr_checks: int = 0
    base_checks: int = 0
    # Wall-clock pause accounting (populated only while tracing is
    # enabled; observational — never feeds back into simulated cycles).
    gc_pause_ns: int = 0
    root_scan_ns: int = 0
    mark_ns: int = 0
    sweep_ns: int = 0
    max_pause_ns: int = 0
    # Allocation-size histogram, bucketed by ``size.bit_length()``
    # (bucket b holds requests of 2**(b-1) .. 2**b - 1 bytes); populated
    # only while tracing is enabled.
    alloc_histogram: dict[int, int] = field(default_factory=dict)
    # Pause-duration histograms, bucketed by ``pause_ns.bit_length()``
    # (same power-of-two scheme).  ``pause_histogram`` is maintained on
    # both collect paths — it is pure integer bookkeeping, one
    # bit_length per collection; ``sweep_histogram`` needs the phase
    # clock and is populated only on the instrumented path.
    pause_histogram: dict[int, int] = field(default_factory=dict)
    sweep_histogram: dict[int, int] = field(default_factory=dict)

    def reset(self) -> None:
        """Zero every counter (fresh measurement window)."""
        fresh = GCStats()
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(fresh, name))

    # ``reset()`` and the per-kind check counters are process-local —
    # a sharded campaign runs its collectors in worker processes, so
    # aggregate accounting needs an explicit, serializable merge.

    # Dict-valued fields that merge keywise instead of additively.
    _HISTOGRAM_FIELDS = ("alloc_histogram", "pause_histogram",
                         "sweep_histogram")

    def to_dict(self) -> dict:
        """JSON/pickle-safe snapshot of every counter.  Empty histograms
        are elided so an untouched window serializes identically whether
        or not its fields were ever registered."""
        d = {name: getattr(self, name)
             for name in self.__dataclass_fields__
             if name not in self._HISTOGRAM_FIELDS}
        for name in self._HISTOGRAM_FIELDS:
            hist = getattr(self, name)
            if hist:
                d[name] = dict(hist)
        return d

    @staticmethod
    def from_dict(d: dict) -> "GCStats":
        stats = GCStats()
        stats.merge(d)
        return stats

    def merge(self, other: "GCStats | dict") -> "GCStats":
        """Fold another window's counters into this one (in place).

        Every counter is additive except ``max_pause_ns`` (maximum).
        The live-set snapshot fields sum too: merging windows from
        distinct collectors yields the total final live set across
        them, and check-count aggregates — the quantity sharded-vs-
        serial equivalence is pinned on — stay exact.
        """
        d = other.to_dict() if isinstance(other, GCStats) else other
        for name, value in d.items():
            if name in self._HISTOGRAM_FIELDS:
                hist = getattr(self, name)
                for bucket, count in value.items():
                    bucket = int(bucket)
                    hist[bucket] = hist.get(bucket, 0) + count
            elif name == "max_pause_ns":
                self.max_pause_ns = max(self.max_pause_ns, value)
            else:
                setattr(self, name, getattr(self, name) + value)
        return self


@dataclass
class RootRange:
    """A half-open address range scanned conservatively word by word."""

    start: int
    end: int
    name: str = ""


class Collector:
    """The public collector facade: GC_malloc / GC_collect / GC_base /
    GC_same_obj, root registration, and the allocation-driven trigger."""

    def __init__(self, memory: Memory | None = None,
                 heap_base: int = HEAP_BASE,
                 heap_limit: int = 64 * 1024 * 1024,
                 initial_threshold: int = 64 * 1024,
                 interior_from_roots_only: bool = False,
                 tracer=None):
        self.memory = memory if memory is not None else Memory()
        self.heap = Heap(self.memory, heap_base, heap_limit)
        self.static_roots: list[RootRange] = []
        self.dynamic_root_providers: list[Callable[[], Iterable[int]]] = []
        self.range_providers: list[Callable[[], Iterable[RootRange]]] = []
        self.stats = GCStats()
        self.interior_from_roots_only = interior_from_roots_only
        self._threshold = initial_threshold
        self._allocated_since_gc = 0
        self.collections_enabled = True
        # Telemetry: defaults to the process-wide tracer at construction
        # time.  All emission sites guard on ``tracer.enabled`` so the
        # untraced paths stay byte-for-byte the original ones.
        self.tracer = tracer if tracer is not None else obs_runtime.get_tracer()

    # -- roots ----------------------------------------------------------------

    def add_static_root(self, start: int, size: int, name: str = "") -> None:
        self.static_roots.append(RootRange(start, start + size, name))

    def add_root_provider(self, provider: Callable[[], Iterable[int]]) -> None:
        """Register a callback yielding candidate root *values* (e.g. the
        VM's current register contents)."""
        self.dynamic_root_providers.append(provider)

    def add_range_provider(self, provider: Callable[[], Iterable[RootRange]]) -> None:
        """Register a callback yielding address ranges to scan (e.g. the
        live portion of the VM stack)."""
        self.range_providers.append(provider)

    # -- allocation -------------------------------------------------------------

    def malloc(self, size: int) -> int:
        """GC_malloc: allocate zeroed memory, collecting first when the
        allocation budget since the last collection is exhausted."""
        if self.collections_enabled and self._allocated_since_gc >= self._threshold:
            self.collect()
        addr = self.heap.allocate(size)
        self.stats.bytes_allocated += size
        self.stats.objects_allocated += 1
        self._allocated_since_gc += size
        if self.tracer.enabled:
            bucket = max(size, 1).bit_length()
            hist = self.stats.alloc_histogram
            hist[bucket] = hist.get(bucket, 0) + 1
        return addr

    def malloc_atomic(self, size: int) -> int:
        """GC_malloc_atomic: allocate pointer-free memory.  The mark
        phase never scans it, so bit patterns inside (string bytes,
        bignum digits) cannot cause false retention."""
        if self.collections_enabled and self._allocated_since_gc >= self._threshold:
            self.collect()
        addr = self.heap.allocate(size, atomic=True)
        self.stats.bytes_allocated += size
        self.stats.objects_allocated += 1
        self._allocated_since_gc += size
        if self.tracer.enabled:
            bucket = max(size, 1).bit_length()
            hist = self.stats.alloc_histogram
            hist[bucket] = hist.get(bucket, 0) + 1
        return addr

    def realloc(self, addr: int, new_size: int) -> int:
        """GC_realloc: grow/shrink by copy; old object is simply dropped
        (the collector reclaims it)."""
        if addr == 0:
            return self.malloc(new_size)
        old_base = self.heap.base_of(addr)
        if old_base is None:
            raise GCCheckError(f"realloc of non-heap address 0x{addr:08x}")
        old_size = self.heap.size_of(old_base) or 0
        new_addr = self.malloc(new_size)
        data = self.memory.read_bytes(old_base, min(old_size, new_size))
        self.memory.write_bytes(new_addr, data)
        return new_addr

    # -- collection ----------------------------------------------------------------

    def collect(self) -> int:
        """Run a full mark-sweep collection; return objects reclaimed."""
        stats = self.stats
        metrics = obs_runtime.get_metrics()
        if not self.tracer.enabled and metrics is None:
            stats.collections += 1
            clock = obs_clock.get_clock()
            t0 = clock()
            self._mark()
            reclaimed = self._sweep()
            pause_ns = clock() - t0
            stats.gc_pause_ns += pause_ns
            stats.max_pause_ns = max(stats.max_pause_ns, pause_ns)
            bucket = max(pause_ns, 1).bit_length()
            hist = stats.pause_histogram
            hist[bucket] = hist.get(bucket, 0) + 1
            stats.live_bytes = self.heap.bytes_in_use
            stats.live_objects = self.heap.objects_in_use
            self._allocated_since_gc = 0
            self._threshold = max(self._threshold, 2 * self.heap.bytes_in_use)
            return reclaimed
        # Metrics-only runs route through the instrumented path too: a
        # disabled tracer's spans are NULL_SPAN no-ops, so only the
        # phase-clock reads and metric observations are added.
        return self._collect_traced(metrics)

    def _collect_traced(self, metrics=None) -> int:
        """Traced variant of :meth:`collect`: identical collection
        semantics, plus a ``gc.collect`` span with the pause broken down
        into root-scan / mark / sweep, heap-timeline counters, and —
        when a metrics registry is active — pause/phase histograms."""
        stats = self.stats
        tracer = self.tracer
        alloc_since = self._allocated_since_gc
        stats.collections += 1
        with tracer.span("gc.collect", number=stats.collections) as sp:
            clock = obs_clock.get_clock()
            phases: dict[str, int] = {}
            t0 = clock()
            self._mark(phases)
            t1 = clock()
            reclaimed = self._sweep()
            t2 = clock()
            stats.live_bytes = self.heap.bytes_in_use
            stats.live_objects = self.heap.objects_in_use
            self._allocated_since_gc = 0
            self._threshold = max(self._threshold, 2 * self.heap.bytes_in_use)

            pause_ns = t2 - t0
            sweep_ns = t2 - t1
            root_scan_ns = phases.get("root_scan_ns", 0)
            mark_ns = (t1 - t0) - root_scan_ns
            stats.gc_pause_ns += pause_ns
            stats.root_scan_ns += root_scan_ns
            stats.mark_ns += mark_ns
            stats.sweep_ns += sweep_ns
            stats.max_pause_ns = max(stats.max_pause_ns, pause_ns)
            for hist, value in ((stats.pause_histogram, pause_ns),
                                (stats.sweep_histogram, sweep_ns)):
                bucket = max(value, 1).bit_length()
                hist[bucket] = hist.get(bucket, 0) + 1

            page_bytes = sum(d.n_pages for d in self.heap.all_pages) * PAGE_SIZE
            live = self.heap.bytes_in_use
            fragmentation = 1.0 - live / page_bytes if page_bytes else 0.0
            sp.set(pause_ns=pause_ns, root_scan_ns=root_scan_ns,
                   mark_ns=mark_ns, sweep_ns=sweep_ns,
                   marked=stats.marked_last_gc, reclaimed_objects=reclaimed,
                   alloc_since_gc=alloc_since, live_bytes=live,
                   live_objects=self.heap.objects_in_use,
                   page_bytes=page_bytes,
                   fragmentation=round(fragmentation, 4),
                   threshold=self._threshold)
        tracer.counter("gc.live_bytes", live)
        tracer.counter("gc.live_objects", self.heap.objects_in_use)
        tracer.counter("gc.page_bytes", page_bytes)
        tracer.counter("gc.fragmentation", round(fragmentation, 4))
        tracer.counter("gc.pause_ns", pause_ns)
        if metrics is not None:
            # Deterministic counters (simulated quantities) ...
            metrics.counter("gc.collections").inc()
            metrics.counter("gc.objects_reclaimed").inc(reclaimed)
            # ... and wall-clock phase histograms (det=False).
            metrics.histogram("gc.pause_ns").observe(pause_ns)
            metrics.histogram("gc.root_scan_ns").observe(root_scan_ns)
            metrics.histogram("gc.mark_ns").observe(mark_ns)
            metrics.histogram("gc.sweep_ns").observe(sweep_ns)
            metrics.gauge("gc.live_bytes").set(live)
            metrics.gauge("gc.live_objects").set(self.heap.objects_in_use)
        return reclaimed

    def _mark(self, phases: dict[str, int] | None = None) -> None:
        # The mark phase is the collector's hot loop: every word of every
        # root range and every reachable object flows through here.  The
        # two-level page-table lookup is inlined (one bounds-free double
        # indexation per candidate) and ranges are read as bulk
        # little-endian word vectors straight off the page buffers
        # instead of one load_word call per word.
        worklist: list[tuple[int, int]] = []  # (object base, object size)
        marked = 0
        top = self.heap.table._top
        mem_pages = self.memory._pages
        roots_only = self.interior_from_roots_only

        def consider(value: int, from_roots: bool) -> None:
            nonlocal marked
            bottom = top[value >> 22]
            if bottom is None:
                return
            desc = bottom[(value >> 12) & 1023]
            if desc is None:
                return
            # Resolve the containing object: base address + slot index.
            if desc.large:
                if not desc.alloc[0] or value >= desc.start + desc.obj_size:
                    return
                idx, base = 0, desc.start
            else:
                offset = value - desc.start
                if offset < 0:
                    return
                idx = offset // desc.obj_size
                if idx >= desc.n_objects or not desc.alloc[idx]:
                    return
                base = desc.start + idx * desc.obj_size
            if roots_only and not from_roots and value != base:
                # Extensions mode: heap-resident pointers must point at
                # the base of an object to be recognized.
                return
            if not desc.mark[idx]:
                desc.mark[idx] = True
                marked += 1
                if not desc.atomic:  # pointer-free: nothing inside to trace
                    worklist.append((base, desc.obj_size))

        def scan_words(start: int, end: int, from_roots: bool) -> None:
            """Conservatively consider every aligned word in [start, end),
            page by page; unmapped pages are skipped wholesale."""
            addr = start & ~(WORD_SIZE - 1)
            while addr + WORD_SIZE <= end:
                page = mem_pages.get(addr >> PAGE_SHIFT)
                page_end = (addr & ~PAGE_MASK) + PAGE_SIZE
                chunk_end = min(end, page_end)
                if page is None:
                    addr = page_end
                    continue
                count = (chunk_end - addr) // WORD_SIZE
                if count:
                    off = addr & PAGE_MASK
                    for value in struct.unpack_from(f"<{count}I", page, off):
                        consider(value, from_roots)
                addr += count * WORD_SIZE
                if addr + WORD_SIZE > chunk_end:
                    addr = page_end

        clock = obs_clock.get_clock() if phases is not None else None
        t0 = clock() if clock is not None else 0
        for root in self._all_root_ranges():
            scan_words(root.start, root.end, True)
        for provider in self.dynamic_root_providers:
            for value in provider():
                consider(value, True)
        if clock is not None:
            phases["root_scan_ns"] = clock() - t0

        while worklist:
            base, size = worklist.pop()
            scan_words(base, base + size, False)
        self.stats.marked_last_gc = marked

    def _all_root_ranges(self) -> Iterable[RootRange]:
        yield from self.static_roots
        for provider in self.range_providers:
            yield from provider()

    def _sweep(self) -> int:
        reclaimed = 0
        free_object = self.heap.free_object
        for desc in self.heap.all_pages:
            alloc, mark = desc.alloc, desc.mark
            for idx in range(desc.n_objects):
                if alloc[idx] and not mark[idx]:
                    self.stats.bytes_reclaimed += desc.obj_size
                    free_object(desc, idx)
                    reclaimed += 1
                mark[idx] = False
        self.stats.objects_reclaimed += reclaimed
        return reclaimed

    # -- the checking primitives (paper, "Debugging Applications") --------------

    def base(self, addr: int) -> int | None:
        """GC_base: start of the live heap object containing ``addr``."""
        return self.heap.base_of(addr)

    def is_heap_pointer(self, addr: int) -> bool:
        return self.heap.base_of(addr) is not None

    def same_obj(self, p: int, q: int) -> int:
        """GC_same_obj(p, q): check that ``p`` points to the same heap
        object as ``q``; return ``p``.

        Like the paper we do not check references to statically
        allocated or stack memory: when ``q`` is not a heap pointer,
        ``p`` passes unchecked.  One-past-the-end pointers pass because
        every object carries an extra byte (see ``round_size``).
        """
        self.stats.checks_performed += 1
        self.stats.same_obj_checks += 1
        return self._same_obj(p, q)

    def _same_obj(self, p: int, q: int) -> int:
        """The check itself, with no stats accounting (``pre_incr`` /
        ``post_incr`` delegate here and attribute to ``incr_checks``)."""
        q_base = self.heap.base_of(q)
        if q_base is None:
            return p
        p_base = self.heap.base_of(p)
        if p_base is None:
            raise GCCheckError(
                f"pointer arithmetic moved 0x{q:08x} outside its object "
                f"(result 0x{p:08x} is not inside any live heap object)")
        if p_base != q_base:
            raise GCCheckError(
                f"pointer arithmetic crossed objects: 0x{p:08x} is in the "
                f"object at 0x{p_base:08x}, but its base 0x{q:08x} is in "
                f"the object at 0x{q_base:08x}")
        return p

    def check_base(self, p: int) -> int:
        """GC_check_base(p): verify that a pointer about to be stored in
        the heap or in a static variable points to the *base* of its
        object — the dynamic check of the paper's Extensions section
        ("It would again be possible to insert dynamic checks to verify
        this").  Null and non-heap pointers pass."""
        self.stats.checks_performed += 1
        self.stats.base_checks += 1
        if p == 0:
            return p
        base = self.heap.base_of(p)
        if base is not None and base != p:
            raise GCCheckError(
                f"interior pointer 0x{p:08x} (object base 0x{base:08x}) "
                f"stored where only base pointers are allowed")
        return p

    def pre_incr(self, p_slot: int, delta: int) -> int:
        """GC_pre_incr(&p, n): p += n with a same-object check; returns
        the new value of p."""
        self.stats.checks_performed += 1
        self.stats.incr_checks += 1
        old = self.memory.load_word(p_slot)
        new = (old + delta) % (1 << 32)
        self._same_obj(new, old)
        self.memory.store_word(p_slot, new)
        return new

    def post_incr(self, p_slot: int, delta: int) -> int:
        """GC_post_incr(&p, n): p += n with a check; returns the old p."""
        self.stats.checks_performed += 1
        self.stats.incr_checks += 1
        old = self.memory.load_word(p_slot)
        new = (old + delta) % (1 << 32)
        self._same_obj(new, old)
        self.memory.store_word(p_slot, new)
        return old
