"""Page-based heap allocator in the style of the Boehm collector.

Pages hold uniformly sized objects (one size class per page); large
objects get their own run of pages.  Every allocation request is padded
by one byte before rounding — the paper: "Either may also point one past
the end of the object, which we handle by allocating all heap objects
with at least one extra byte at the end."  Because sizes round up to a
granule, the checker "is not completely accurate ... at most unused
memory can be accidentally referenced", faithfully reproduced here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .memory import HEAP_BASE, Memory, PAGE_SIZE
from .pagetable import PageTable

GRANULE = 8
MAX_SMALL = PAGE_SIZE // 8  # objects above this get dedicated pages


@dataclass
class PageDescriptor:
    """Descriptor for one heap page (or the head of a large-object run)."""

    start: int
    obj_size: int  # rounded size in bytes
    n_objects: int
    large: bool = False
    n_pages: int = 1
    atomic: bool = False  # pointer-free objects: the mark phase skips them
    alloc: list[bool] = field(default_factory=list)
    mark: list[bool] = field(default_factory=list)
    free_slots: list[int] = field(default_factory=list)
    in_partial: bool = False  # tracked on the allocator's partial-page list

    def __post_init__(self):
        if not self.alloc:
            self.alloc = [False] * self.n_objects
            self.mark = [False] * self.n_objects
            self.free_slots = list(range(self.n_objects - 1, -1, -1))

    def object_index(self, addr: int) -> int | None:
        """Index of the object containing ``addr``, or None."""
        offset = addr - self.start
        if offset < 0:
            return None
        idx = offset // self.obj_size
        if idx >= self.n_objects:
            return None
        return idx

    def object_base(self, idx: int) -> int:
        return self.start + idx * self.obj_size


def round_size(request: int) -> int:
    """Request -> stored size: +1 byte (one-past-the-end rule), rounded
    up to the granule."""
    padded = max(request, 1) + 1
    return (padded + GRANULE - 1) // GRANULE * GRANULE


class Heap:
    """Size-class allocator over simulated memory."""

    def __init__(self, memory: Memory, base: int = HEAP_BASE,
                 limit_bytes: int = 64 * 1024 * 1024):
        self.memory = memory
        self.base = base
        self.limit = base + limit_bytes
        self._cursor = base
        self.table = PageTable()
        # (size class, atomic?) -> pages with free slots
        self._partial: dict[tuple[int, bool], list[PageDescriptor]] = {}
        self.all_pages: list[PageDescriptor] = []
        self.bytes_in_use = 0
        self.objects_in_use = 0
        # When set, reclaimed objects are overwritten with this byte so
        # that use-after-collection reads become observable (the
        # GC-safety failure demos depend on it).
        self.poison_byte: int | None = None

    # -- page management -----------------------------------------------------

    def _new_page_run(self, n_pages: int) -> int:
        addr = self._cursor
        if addr + n_pages * PAGE_SIZE > self.limit:
            raise MemoryError("simulated heap exhausted")
        self._cursor += n_pages * PAGE_SIZE
        self.memory.map_range(addr, n_pages * PAGE_SIZE)
        return addr

    def _make_small_page(self, obj_size: int, atomic: bool) -> PageDescriptor:
        start = self._new_page_run(1)
        desc = PageDescriptor(start=start, obj_size=obj_size,
                              n_objects=PAGE_SIZE // obj_size, atomic=atomic)
        self.table.register(start, desc)
        self.all_pages.append(desc)
        self._partial.setdefault((obj_size, atomic), []).append(desc)
        desc.in_partial = True
        return desc

    def _make_large_object(self, size: int, atomic: bool) -> PageDescriptor:
        n_pages = (size + PAGE_SIZE - 1) // PAGE_SIZE
        start = self._new_page_run(n_pages)
        desc = PageDescriptor(start=start, obj_size=n_pages * PAGE_SIZE,
                              n_objects=1, large=True, n_pages=n_pages,
                              atomic=atomic)
        for i in range(n_pages):
            self.table.register(start + i * PAGE_SIZE, desc)
        self.all_pages.append(desc)
        return desc

    # -- allocation -------------------------------------------------------------

    def allocate(self, request: int, zero: bool = True,
                 atomic: bool = False) -> int:
        """Allocate ``request`` usable bytes; return the object address.
        ``atomic`` objects are guaranteed pointer-free (GC_malloc_atomic):
        the collector never scans their contents."""
        size = round_size(request)
        if size > MAX_SMALL:
            desc = self._make_large_object(size, atomic)
            desc.alloc[0] = True
            desc.free_slots.clear()
            addr = desc.start
        else:
            pages = self._partial.setdefault((size, atomic), [])
            while pages and not pages[-1].free_slots:
                pages.pop().in_partial = False
            desc = pages[-1] if pages else self._make_small_page(size, atomic)
            idx = desc.free_slots.pop()
            desc.alloc[idx] = True
            addr = desc.object_base(idx)
        if zero:
            self.memory.fill(addr, desc.obj_size if desc.large else size)
        self.bytes_in_use += desc.obj_size
        self.objects_in_use += 1
        return addr

    def free_object(self, desc: PageDescriptor, idx: int) -> None:
        """Return one object to its page's free list (sweep helper)."""
        assert desc.alloc[idx]
        desc.alloc[idx] = False
        desc.mark[idx] = False
        desc.free_slots.append(idx)
        if self.poison_byte is not None:
            self.memory.fill(desc.object_base(idx), desc.obj_size, self.poison_byte)
        self.bytes_in_use -= desc.obj_size
        self.objects_in_use -= 1
        # O(1) membership flag (a `desc in list` scan here is quadratic
        # across a sweep that frees many objects).
        if not desc.large and not desc.in_partial:
            self._partial.setdefault((desc.obj_size, desc.atomic), []).append(desc)
            desc.in_partial = True

    # -- queries ------------------------------------------------------------------

    def descriptor_for(self, addr: int) -> PageDescriptor | None:
        desc = self.table.lookup(addr)
        return desc  # type: ignore[return-value]

    def base_of(self, addr: int) -> int | None:
        """GC_base: map any interior address to the start of its live
        object, or None when ``addr`` is not inside a live heap object."""
        desc = self.descriptor_for(addr)
        if desc is None:
            return None
        if desc.large:
            return desc.start if desc.alloc[0] and addr < desc.start + desc.obj_size else None
        idx = desc.object_index(addr)
        if idx is None or not desc.alloc[idx]:
            return None
        return desc.object_base(idx)

    def size_of(self, base_addr: int) -> int | None:
        """Rounded size of the live object starting at ``base_addr``."""
        desc = self.descriptor_for(base_addr)
        if desc is None:
            return None
        idx = desc.object_index(base_addr)
        if idx is None or desc.object_base(idx) != base_addr or not desc.alloc[idx]:
            return None
        return desc.obj_size

    def live_objects(self):
        """Yield (descriptor, index, base address) for every live object."""
        for desc in self.all_pages:
            for idx in range(desc.n_objects):
                if desc.alloc[idx]:
                    yield desc, idx, desc.object_base(idx)
