"""Two-level page descriptor table — "a tree of fixed height 2
describing pages of uniformly sized objects" (paper, Related Work, the
contrast with Jones & Kelly's splay tree).

Mapping an arbitrary address to its page descriptor is the operation
``GC_base`` and the mark phase both hammer; the height-2 tree makes it
two array indexations, "an operation crucial to the collector's
performance".
"""

from __future__ import annotations

from .memory import PAGE_SHIFT

_BOTTOM_BITS = 10
_BOTTOM_SIZE = 1 << _BOTTOM_BITS
_TOP_SIZE = 1 << (32 - PAGE_SHIFT - _BOTTOM_BITS)


class PageTable:
    """addr -> descriptor in two indexations; None when not a heap page."""

    def __init__(self):
        self._top: list[list[object | None] | None] = [None] * _TOP_SIZE
        self.pages = 0

    def register(self, addr: int, descriptor: object) -> None:
        page_idx = addr >> PAGE_SHIFT
        hi, lo = page_idx >> _BOTTOM_BITS, page_idx & (_BOTTOM_SIZE - 1)
        bottom = self._top[hi]
        if bottom is None:
            bottom = [None] * _BOTTOM_SIZE
            self._top[hi] = bottom
        if bottom[lo] is None:
            self.pages += 1
        bottom[lo] = descriptor

    def unregister(self, addr: int) -> None:
        page_idx = addr >> PAGE_SHIFT
        hi, lo = page_idx >> _BOTTOM_BITS, page_idx & (_BOTTOM_SIZE - 1)
        bottom = self._top[hi]
        if bottom is not None and bottom[lo] is not None:
            bottom[lo] = None
            self.pages -= 1

    def lookup(self, addr: int) -> object | None:
        """The hot path: two array indexations, no hashing."""
        if addr < 0 or addr >= 1 << 32:
            return None
        page_idx = addr >> PAGE_SHIFT
        bottom = self._top[page_idx >> _BOTTOM_BITS]
        if bottom is None:
            return None
        return bottom[page_idx & (_BOTTOM_SIZE - 1)]

    def __contains__(self, addr: int) -> bool:
        return self.lookup(addr) is not None
