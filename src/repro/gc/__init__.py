"""Conservative garbage collector substrate (Boehm-style): simulated
memory, page-table, size-class heap, mark-sweep collector, and the
pointer-arithmetic checking primitives."""

from .collector import Collector, GCCheckError, GCStats, RootRange
from .heap import GRANULE, Heap, PageDescriptor, round_size
from .memory import (
    HEAP_BASE, Memory, MemoryFault, PAGE_SIZE, STACK_TOP, STATIC_BASE,
)
from .pagetable import PageTable

__all__ = [
    "Collector", "GCCheckError", "GCStats", "RootRange",
    "GRANULE", "Heap", "PageDescriptor", "round_size",
    "HEAP_BASE", "Memory", "MemoryFault", "PAGE_SIZE", "STACK_TOP",
    "STATIC_BASE", "PageTable",
]
