"""The peephole postprocessor (paper, "A Postprocessor").

Looks for three patterns inside each basic block and rewrites them,
subject to KEEP_LIVE-aware safety constraints:

1.  ``add x,y,z ... ld [z]``    ==>  ``... ld [x+y]``
2.  ``mov x,z   ... z ...``     ==>  ``... x ...``
3.  ``add x,y,z; mov z,w``      ==>  ``add x,y,w``

Constraints (from the paper):
* "the register z should have no other uses" — checked via liveness and
  use scanning;
* a transformation "could not apply if z were originally mentioned as
  the second argument of a KEEP_LIVE" — the ``keepsafe`` markers
  codegen leaves behind carry exactly that information;
* the inputs (x, y) must not be redefined between definition and use.

The paper's correctness arguments carry over: the same values remain
live at all program points, so KEEP_LIVE semantics cannot be
invalidated.  We do not reassign registers or reschedule the result.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.asm import ALU_OPS, ARG_REGS, FP, MFunc, MInst, MProgram, RV, SCRATCH, SP
from .liveness import Liveness, basic_blocks, _writes

_SPECIAL_REGS = frozenset((SP, FP, RV) + ARG_REGS + SCRATCH)


@dataclass
class PeepholeStats:
    loads_folded: int = 0
    moves_eliminated: int = 0
    adds_retargeted: int = 0

    @property
    def total(self) -> int:
        return self.loads_folded + self.moves_eliminated + self.adds_retargeted


def _keepsafe_bases(fn: MFunc) -> set[str]:
    """Registers mentioned as the *base* (second) argument of a
    KEEP_LIVE — those must never lose their identity."""
    return {inst.rs2 for inst in fn.insts if inst.op == "keepsafe" and inst.rs2}


def postprocess_function(fn: MFunc, max_rounds: int = 4) -> PeepholeStats:
    stats = PeepholeStats()
    for _ in range(max_rounds):
        changed = (_pattern_fold_load(fn, stats)
                   | _pattern_eliminate_move(fn, stats)
                   | _pattern_retarget_add(fn, stats))
        if not changed:
            break
    return stats


def postprocess(prog: MProgram) -> PeepholeStats:
    """Run the postprocessor over every function; aggregate statistics."""
    total = PeepholeStats()
    for fn in prog.functions.values():
        s = postprocess_function(fn)
        total.loads_folded += s.loads_folded
        total.moves_eliminated += s.moves_eliminated
        total.adds_retargeted += s.adds_retargeted
    return total


# -- pattern 1: add + load/store fusion --------------------------------------


def _pattern_fold_load(fn: MFunc, stats: PeepholeStats) -> bool:
    live = Liveness(fn)
    changed = False
    for block in basic_blocks(fn.insts):
        for pos, idx in enumerate(block):
            inst = fn.insts[idx]
            if not _is_plain_addr_use(inst):
                continue
            z = inst.rs1
            if z is None:
                continue
            # The KEEP_LIVE base constraint is span-local (checked in
            # _span_clear): a marker naming z as base *between* the add
            # and this use blocks the fold; the same register holding an
            # unrelated value elsewhere does not.
            add_idx = _find_defining_add(fn, block, pos, z)
            if add_idx is None:
                continue
            add = fn.insts[add_idx]
            x, y, imm = add.rs1, add.rs2, add.imm
            if add.op == "sub":
                if imm is None:
                    continue  # register subtract cannot fold
                imm = -imm
            # The sum must be consumed here: either the load overwrites
            # z itself, or z is dead afterwards.  It must also not be
            # read between add and use except by keepsafe markers.
            consumed = (inst.op == "ld" and inst.rd == z) or live.dead_after(idx, z)
            if not consumed:
                continue
            if not _span_clear(fn, add_idx, idx, z, x, y):
                continue
            if y is not None:
                new = MInst(inst.op, rd=inst.rd, rs1=x, rs2=y,
                            width=inst.width, signed=inst.signed)
            else:
                new = MInst(inst.op, rd=inst.rd, rs1=x, imm=imm,
                            width=inst.width, signed=inst.signed)
            fn.insts[idx] = new
            fn.insts[add_idx] = MInst("nop")
            _retarget_markers(fn, add_idx, idx, z, x)
            stats.loads_folded += 1
            changed = True
            live = Liveness(fn)
    _drop_nops(fn)
    return changed


def _is_plain_addr_use(inst: MInst) -> bool:
    """A load or store addressed as [z+0] — a fusable address use."""
    if inst.op not in ("ld", "st"):
        return False
    return inst.rs2 is None and (inst.imm or 0) == 0


def _find_defining_add(fn: MFunc, block: list[int], pos: int, z: str) -> int | None:
    """Walk backward for ``add/sub ?, ?, z`` with no intervening write to z."""
    for back in range(pos - 1, -1, -1):
        idx = block[back]
        inst = fn.insts[idx]
        if inst.register_written() == z or (inst.op in ("call", "callr")
                                            and z in _writes(inst)):
            if inst.op in ("add", "sub") and inst.rd == z:
                # Operands may include z itself (in-place add): removing
                # the add leaves the *old* value in z, which is exactly
                # what the fused addressing mode then reads.
                return idx
            return None
    return None


def _span_clear(fn: MFunc, start: int, end: int, z: str, x: str | None,
                y: str | None) -> bool:
    """No reads of z and no writes to x/y/z strictly between start and end."""
    for k in range(start + 1, end):
        inst = fn.insts[k]
        if inst.op == "keepsafe":
            if inst.rs2 == z:
                return False  # z is a KEEP_LIVE base
            continue
        if z in inst.registers_read():
            return False
        written = _writes(inst)
        for reg in (x, y, z):
            if reg is not None and reg in written:
                return False
    return True


def _retarget_markers(fn: MFunc, start: int, end: int, old: str, new: str | None) -> None:
    for k in range(start, end):
        inst = fn.insts[k]
        if inst.op == "keepsafe" and inst.rs1 == old and new is not None:
            inst.rs1 = new


# -- pattern 2: move elimination ---------------------------------------------


def _pattern_eliminate_move(fn: MFunc, stats: PeepholeStats) -> bool:
    live = Liveness(fn)
    protected = _keepsafe_bases(fn)
    changed = False
    for block in basic_blocks(fn.insts):
        for pos, idx in enumerate(block):
            inst = fn.insts[idx]
            if inst.op != "mov" or inst.rd is None or inst.rs1 is None:
                continue
            x, z = inst.rs1, inst.rd
            if x == z:
                fn.insts[idx] = MInst("nop")
                changed = True
                continue
            if z in protected:
                continue
            if z in _SPECIAL_REGS:
                continue  # sp/fp/args/rv have implicit readers
            # Scan forward, planning to rewrite reads of z into x.  The
            # mov can go iff z's value is never needed once x stops
            # holding it (x redefined, z redefined, z dead, or block end
            # with z dead).
            ok = False
            rewrites: list[int] = []
            for later in block[pos + 1:]:
                linst = fn.insts[later]
                if z in linst.registers_read():
                    if linst.op in ("call", "callr", "ret"):
                        # Implicit read (argument register / rv): cannot
                        # be rewritten textually.
                        rewrites = None
                        break
                    rewrites.append(later)
                written = _writes(linst)
                if z in written:
                    ok = True  # copy fully consumed; z renewed
                    break
                if x in written:
                    # x no longer holds the value; z must die with it.
                    # (Reads of z at this same inst were rewritten above,
                    # and reads precede writes within one instruction.)
                    ok = live.dead_after(later, z)
                    break
                if live.dead_after(later, z):
                    ok = True
                    break
            else:
                last = block[-1]
                ok = live.dead_after(last, z)
            if not ok:
                continue
            for later in rewrites:
                _replace_reads(fn.insts[later], z, x)
            fn.insts[idx] = MInst("nop")
            stats.moves_eliminated += 1
            changed = True
            live = Liveness(fn)
    _drop_nops(fn)
    return changed


def _replace_reads(inst: MInst, old: str, new: str) -> None:
    if inst.op == "st" and inst.rd == old:
        inst.rd = new
    if inst.rs1 == old:
        inst.rs1 = new
    if inst.rs2 == old:
        inst.rs2 = new


# -- pattern 3: add/mov combining ----------------------------------------------


def _pattern_retarget_add(fn: MFunc, stats: PeepholeStats) -> bool:
    live = Liveness(fn)
    changed = False
    for block in basic_blocks(fn.insts):
        for pos, idx in enumerate(block):
            inst = fn.insts[idx]
            if inst.op != "mov" or inst.rs1 is None or inst.rd is None:
                continue
            z, w = inst.rs1, inst.rd
            if z == w:
                continue
            add_idx = _find_defining_add(fn, block, pos, z)
            if add_idx is None:
                continue
            add = fn.insts[add_idx]
            if add.rd == w or add.rs1 == w or (add.rs2 == w):
                continue
            if not live.dead_after(idx, z):
                continue
            if not _span_clear(fn, add_idx, idx, z, add.rs1, add.rs2):
                continue
            # w must not be read or written between the add and the mov.
            clear = True
            for k in range(add_idx + 1, idx):
                mid = fn.insts[k]
                if w in mid.registers_read() or w in _writes(mid):
                    clear = False
                    break
            if not clear:
                continue
            fn.insts[add_idx] = MInst(add.op, rd=w, rs1=add.rs1, rs2=add.rs2,
                                      imm=add.imm)
            fn.insts[idx] = MInst("nop")
            _retarget_markers(fn, add_idx, idx + 1, z, w)
            stats.adds_retargeted += 1
            changed = True
            live = Liveness(fn)
    _drop_nops(fn)
    return changed


def _drop_nops(fn: MFunc) -> None:
    fn.insts = [i for i in fn.insts if i.op != "nop"]
