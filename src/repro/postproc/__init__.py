"""Machine-code postprocessors: the peephole pass that recovers most
KEEP_LIVE overhead (paper, "A Postprocessor") and the opt-in
escape-analysis allocation-sinking pass."""

from .liveness import Liveness, basic_blocks
from .peephole import PeepholeStats, postprocess, postprocess_function
from .sink import SinkStats, sink_function, sink_program

__all__ = ["Liveness", "basic_blocks", "PeepholeStats", "postprocess",
           "postprocess_function", "SinkStats", "sink_function",
           "sink_program"]
