"""Peephole postprocessor: recovers most KEEP_LIVE overhead on the
generated machine code (paper, "A Postprocessor")."""

from .liveness import Liveness, basic_blocks
from .peephole import PeepholeStats, postprocess, postprocess_function

__all__ = ["Liveness", "basic_blocks", "PeepholeStats", "postprocess",
           "postprocess_function"]
