"""Escape-analysis allocation sinking: rewrite heap allocations whose
references never escape into frame-local storage.

The paper's collector pays for every object twice — once at allocation
(``GC_malloc`` zeroes and threads free lists) and again at every
collection (mark + sweep traverse it, and allocation volume is what
*triggers* collections).  An allocation whose reference provably never
leaves the allocating frame needs none of that: the object can live in
the frame itself, and the collector never sees it.

This is a *postprocessor* pass in the same sense as ``peephole``: it
runs on generated machine code (:class:`~repro.machine.asm.MFunc`) and
is opt-in — unlike the peephole pass it deliberately changes observable
counts (fewer instructions, fewer cycles, fewer collections), so it is
never applied inside the default bench matrix, only behind explicit
``sink`` flags.

A candidate is ``call GC_malloc/malloc/GC_malloc_atomic`` with a
constant size whose result is captured by a single ``mov z, rv``.  The
pass then runs a forward escape analysis over the function's CFG,
tracking the closure of registers that may hold a pointer into the
object (``mov``, ``add p, P, x`` and ``sub p, P, imm`` derive; loads
and stores *through* such pointers are fine).  The candidate is
rejected — conservatively, GC-safety first — if any of these is seen:

* the pointer is stored to memory as a *value* (``st P, [..]``), passed
  to any call, returned, or moved into a special register;
* any arithmetic on it other than offset derivation (comparisons would
  observe the address; both-operands-derived arithmetic could smuggle
  it out);
* a conditional branch tests it;
* a ``keepsafe`` marker mentions it: KEEP_LIVE/BASE annotations assert
  the register *must* remain a recognizable heap reference for the
  collector, so safety-checked builds are left untouched semantically;
* any member of the closure is live across a call — a potential
  collection point (the callee may allocate and collect);
* the object is large (> :data:`MAX_SINK_BYTES`) or the frame would
  outgrow :data:`MAX_FRAME_BYTES`.

Why the rewrite is GC-safe: the sunk object lives in the frame, and the
collector conservatively scans the whole live stack ``[sp, STACK_TOP]``
as a root range — heap pointers *stored into* the sunk object are
therefore still found, exactly as they were when the object was heap
allocated.  The stack slot is re-zeroed at the capture point on every
execution, matching ``heap.allocate``'s zeroing of the rounded size, so
loop iterations see the same fresh-object contents the heap version
provided.  An allocation inside a loop is only sunk if its pointer dies
before the next iteration's allocation call — that is forced by the
live-across-call rule — so slot reuse can never alias two objects that
were simultaneously live.

An allocation whose result is *never* captured (``rv`` dead after the
call) is simply deleted — same analysis, degenerate rewrite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machine.asm import (
    ALU_OPS, ARG_REGS, FP, MFunc, MInst, MProgram, RV, SCRATCH, SP, UNARY_OPS,
)
from ..gc.heap import round_size
from .liveness import CALL_CLOBBERS, Liveness, basic_blocks

# Allocation builtins eligible for sinking (single size argument,
# result in rv).  calloc computes its size from two arguments and
# realloc has copy semantics; neither is worth the pattern-match.
ALLOC_FUNCS = frozenset(("GC_malloc", "malloc", "GC_malloc_atomic"))

_SPECIAL_REGS = frozenset((SP, FP, RV) + ARG_REGS + SCRATCH)

# Objects larger than this stay on the heap: big scratch buffers would
# bloat every frame on the call path, and the collector amortizes them
# fine.  Frames are capped so ld/st offsets stay small and deep
# recursion cannot quietly multiply stack usage.
MAX_SINK_BYTES = 128
MAX_FRAME_BYTES = 2048

_ZERO_REG = SCRATCH[2]  # x2: dead between instructions by convention


@dataclass
class SinkStats:
    """What the pass did (and why it declined)."""

    sunk: int = 0            # allocations rewritten to frame storage
    eliminated: int = 0      # dead allocations deleted outright
    bytes_sunk: int = 0      # rounded object bytes moved to frames
    candidates: int = 0      # constant-size allocation sites examined
    blocked: dict = field(default_factory=dict)  # reason -> count

    @property
    def total(self) -> int:
        return self.sunk + self.eliminated

    def block(self, reason: str) -> None:
        self.blocked[reason] = self.blocked.get(reason, 0) + 1

    def merge(self, other: "SinkStats") -> None:
        self.sunk += other.sunk
        self.eliminated += other.eliminated
        self.bytes_sunk += other.bytes_sunk
        self.candidates += other.candidates
        for reason, n in other.blocked.items():
            self.blocked[reason] = self.blocked.get(reason, 0) + n


class _Escapes(Exception):
    def __init__(self, reason: str):
        self.reason = reason
        super().__init__(reason)


# -- candidate discovery -----------------------------------------------------


@dataclass
class _Candidate:
    call_idx: int
    setup_idx: int | None   # the instruction defining a0 (removed too)
    cap_idx: int | None     # the `mov z, rv` capture; None = dead result
    reg: str | None         # z
    size: int


def _const_size(fn: MFunc, call_idx: int) -> tuple[int | None, int | None]:
    """Resolve the allocation size: find the in-block def of ``a0``
    before the call (``li a0, imm`` or ``mov a0, r`` with r's def a
    unique ``li r, imm``).  Returns (setup_idx, size) or (None, None)."""
    insts = fn.insts
    for j in range(call_idx - 1, -1, -1):
        inst = insts[j]
        if inst.op in ("label", "jmp", "bz", "bnz", "call", "callr"):
            return None, None
        if inst.register_written() != ARG_REGS[0]:
            continue
        if inst.op == "li":
            return j, inst.imm
        if inst.op == "mov" and inst.rs1 is not None:
            return j, _resolve_li(fn, j, inst.rs1)
        return None, None
    return None, None


def _resolve_li(fn: MFunc, use_idx: int, reg: str) -> int | None:
    """The constant ``reg`` holds at ``use_idx``: a same-block ``li``
    with no intervening call, or the register's unique def anywhere in
    the function being an ``li`` (LICM hoists loop-invariant constants
    out of the allocating block).  Epilogue callee-save restores are
    not counted as defs: only epilogue code sits between a restore and
    its ``ret``, so the restored value never reaches another use."""
    insts = fn.insts
    for j in range(use_idx - 1, -1, -1):
        inst = insts[j]
        if inst.op in ("label", "jmp", "bz", "bnz", "call", "callr"):
            break
        if inst.register_written() == reg:
            return inst.imm if inst.op == "li" else None
    defs = [j for j, inst in enumerate(insts)
            if inst.register_written() == reg
            and not _is_callee_restore(fn, j)]
    if len(defs) == 1 and insts[defs[0]].op == "li":
        return insts[defs[0]].imm
    return None


def _is_callee_restore(fn: MFunc, j: int) -> bool:
    """An epilogue ``ld reg, [fp+off]`` undoing a prologue save of the
    same register to the same slot."""
    inst = fn.insts[j]
    if inst.op != "ld" or inst.rs1 != FP or inst.rs2 is not None:
        return False
    return any(p.op == "st" and p.rd == inst.rd and p.rs1 == FP
               and p.rs2 is None and p.imm == inst.imm
               for p in fn.insts[:16])


def _find_candidates(fn: MFunc, live: Liveness) -> list[_Candidate]:
    out: list[_Candidate] = []
    insts = fn.insts
    for i, inst in enumerate(insts):
        if inst.op != "call" or inst.symbol not in ALLOC_FUNCS or inst.nargs != 1:
            continue
        setup_idx, size = _const_size(fn, i)
        if size is None or setup_idx is None:
            continue
        if live.dead_after(i, RV):
            out.append(_Candidate(i, setup_idx, None, None, size))
            continue
        # The capture must be the next rv access, before control flow.
        for j in range(i + 1, len(insts)):
            nxt = insts[j]
            if nxt.op in ("label", "jmp", "bz", "bnz", "call", "callr", "ret"):
                break
            reads_rv = RV in nxt.registers_read()
            if nxt.op == "mov" and nxt.rs1 == RV and nxt.rd is not None:
                if nxt.rd not in _SPECIAL_REGS and live.dead_after(j, RV):
                    out.append(_Candidate(i, setup_idx, j, nxt.rd, size))
                break
            if reads_rv or nxt.register_written() == RV:
                break
        # (no capture found: rv used some other way — not a candidate)
    return out


# -- escape analysis ---------------------------------------------------------


def _transfer(inst: MInst, pointers: set[str], live: Liveness,
              idx: int) -> None:
    """Advance the may-hold-the-pointer register set across one
    instruction; raise :class:`_Escapes` on any disqualifying use."""
    op = inst.op
    if not pointers:
        # Nothing to track; only calls matter (they cannot re-create
        # membership) — fall through so writes keep sets empty.
        pass
    if op == "keepsafe":
        if inst.rs1 in pointers or inst.rs2 in pointers:
            raise _Escapes("keepsafe")
        return
    if op in ("bz", "bnz"):
        if inst.rs1 in pointers:
            raise _Escapes("branch-on-pointer")
        return
    if op in ("jmp", "label", "nop"):
        return
    if op in ("call", "callr"):
        if op == "callr" and inst.rs1 in pointers:
            raise _Escapes("indirect-call-target")
        if any(a in pointers for a in ARG_REGS[: inst.nargs]):
            raise _Escapes("passed-to-call")
        if pointers & live.live_after[idx]:
            raise _Escapes("live-across-call")
        pointers -= set(CALL_CLOBBERS)
        return
    if op == "ret":
        # rv can never be in the set (special registers are barred), so
        # returning cannot leak the pointer.
        return
    if op == "st":
        if inst.rd in pointers:
            raise _Escapes("stored-as-value")
        return  # address uses (rs1/rs2) are reads *through* the pointer
    if op == "ld":
        pointers.discard(inst.rd)
        return
    if op == "mov":
        if inst.rs1 in pointers:
            if inst.rd in _SPECIAL_REGS:
                raise _Escapes("moved-to-special")
            pointers.add(inst.rd)
        else:
            pointers.discard(inst.rd)
        return
    if op in ALU_OPS:
        in1 = inst.rs1 in pointers
        in2 = inst.rs2 is not None and inst.rs2 in pointers
        if not in1 and not in2:
            pointers.discard(inst.rd)
            return
        derived = (op == "add" and not (in1 and in2)) or \
                  (op == "sub" and in1 and not in2)
        if not derived:
            raise _Escapes("pointer-arithmetic")
        if inst.rd in _SPECIAL_REGS:
            raise _Escapes("moved-to-special")
        pointers.add(inst.rd)
        return
    if op in UNARY_OPS:
        if inst.rs1 in pointers:
            raise _Escapes("pointer-arithmetic")
        pointers.discard(inst.rd)
        return
    # li, la, or anything else that writes a fresh value.
    w = inst.register_written()
    if w is not None:
        pointers.discard(w)


def _escape_reason(fn: MFunc, live: Liveness, cand: _Candidate) -> str | None:
    """Run the forward escape analysis from the capture point; return a
    block reason, or None when the object provably never escapes."""
    if cand.cap_idx is None:
        return None  # dead result: nothing to track
    insts = fn.insts
    blocks = basic_blocks(insts)
    block_of = {}
    label_block = {}
    for b, idxs in enumerate(blocks):
        for i in idxs:
            block_of[i] = b
        if idxs and insts[idxs[0]].op == "label":
            label_block[insts[idxs[0]].symbol] = b

    def succs(b: int) -> list[int]:
        idxs = blocks[b]
        last = insts[idxs[-1]] if idxs else None
        out: list[int] = []
        if last is not None and last.op == "jmp":
            if last.symbol in label_block:
                out.append(label_block[last.symbol])
        elif last is not None and last.op in ("bz", "bnz"):
            if last.symbol in label_block:
                out.append(label_block[last.symbol])
            if b + 1 < len(blocks):
                out.append(b + 1)
        elif last is not None and last.op == "ret":
            pass
        elif b + 1 < len(blocks):
            out.append(b + 1)
        return out

    in_state: list[set[str]] = [set() for _ in blocks]

    def run(idxs: list[int], state: set[str], frm: int = 0) -> set[str]:
        for i in idxs[frm:]:
            _transfer(insts[i], state, live, i)
        return state

    try:
        b0 = block_of[cand.cap_idx]
        pos = blocks[b0].index(cand.cap_idx)
        seed = run(blocks[b0], {cand.reg}, frm=pos + 1)
        work = [(s, seed) for s in succs(b0)]
        while work:
            b, state = work.pop()
            if state <= in_state[b]:
                continue
            in_state[b] |= state
            out = run(blocks[b], set(in_state[b]))
            for s in succs(b):
                work.append((s, out))
    except _Escapes as e:
        return e.reason
    return None


# -- rewriting ---------------------------------------------------------------


def _prologue_sub(fn: MFunc) -> int | None:
    """Index of the prologue's ``sub sp, sp, frame_size``."""
    for i, inst in enumerate(fn.insts[:6]):
        if (inst.op == "sub" and inst.rd == SP and inst.rs1 == SP
                and inst.rs2 is None and inst.imm == fn.frame_size):
            return i
    return None


def _sink_one(fn: MFunc, live: Liveness, cand: _Candidate,
              stats: SinkStats) -> bool:
    insts = fn.insts
    if cand.cap_idx is None:
        # Dead allocation: delete the call and its size setup.
        insts[cand.call_idx] = MInst("nop")
        insts[cand.setup_idx] = MInst("nop")
        stats.eliminated += 1
        _drop_nops(fn)
        return True
    rounded = round_size(cand.size)
    sub_idx = _prologue_sub(fn)
    if sub_idx is None:
        stats.block("no-prologue")
        return False
    new_frame = fn.frame_size + rounded
    if new_frame > MAX_FRAME_BYTES:
        stats.block("frame-too-large")
        return False
    if _ZERO_REG in live.live_after[cand.cap_idx]:
        stats.block("scratch-live")
        return False
    insts[sub_idx] = MInst("sub", rd=SP, rs1=SP, imm=new_frame)
    fn.frame_size = new_frame
    base = -new_frame
    seq = [MInst("li", rd=_ZERO_REG, imm=0)]
    seq.extend(MInst("st", rd=_ZERO_REG, rs1=FP, imm=base + off)
               for off in range(0, rounded, 4))
    seq.append(MInst("add", rd=cand.reg, rs1=FP, imm=base))
    insts[cand.cap_idx: cand.cap_idx + 1] = seq
    insts[cand.call_idx] = MInst("nop")
    insts[cand.setup_idx] = MInst("nop")
    stats.sunk += 1
    stats.bytes_sunk += rounded
    _drop_nops(fn)
    return True


def _drop_nops(fn: MFunc) -> None:
    fn.insts = [i for i in fn.insts if i.op != "nop"]


# -- entry points ------------------------------------------------------------


def sink_function(fn: MFunc, max_rounds: int = 16) -> SinkStats:
    """Sink every provably non-escaping constant-size allocation in one
    function.  Each successful rewrite invalidates indices and
    liveness, so the scan restarts until a fixpoint (bounded)."""
    stats = SinkStats()
    rejected: set[tuple] = set()  # (call position fingerprint) -> skip
    for _ in range(max_rounds):
        live = Liveness(fn)
        progress = False
        for cand in _find_candidates(fn, live):
            fp = (cand.call_idx, cand.size, cand.reg)
            if fp in rejected:
                continue
            stats.candidates += 1
            if cand.size is None or cand.size <= 0 or cand.size > MAX_SINK_BYTES:
                stats.block("size")
                rejected.add(fp)
                continue
            reason = _escape_reason(fn, live, cand)
            if reason is not None:
                stats.block(reason)
                rejected.add(fp)
                continue
            if _sink_one(fn, live, cand, stats):
                progress = True
                rejected = set()  # indices shifted; fingerprints stale
                break
            rejected.add(fp)
        if not progress:
            break
    return stats


def sink_program(prog: MProgram) -> SinkStats:
    """Run allocation sinking over every function; aggregate stats."""
    total = SinkStats()
    for fn in prog.functions.values():
        total.merge(sink_function(fn))
    return total
