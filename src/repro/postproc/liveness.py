"""Register-level liveness for machine code.

"A simple global, intraprocedural analysis that allows us to identify
possible uses of register values" — the prerequisite for the paper's
peephole postprocessor.  Standard backward dataflow over basic blocks of
:class:`repro.machine.asm.MInst`.
"""

from __future__ import annotations

from ..machine.asm import ARG_REGS, MFunc, MInst, RV, SCRATCH

# Registers clobbered by a call: all caller-saved temporaries, argument
# registers, scratch, and the return value.
CALL_CLOBBERS = tuple(f"t{i}" for i in range(16)) + ARG_REGS + SCRATCH + (RV,)


def basic_blocks(insts: list[MInst]) -> list[list[int]]:
    leaders = {0}
    label_at = {inst.symbol: i for i, inst in enumerate(insts) if inst.op == "label"}
    for i, inst in enumerate(insts):
        if inst.op in ("jmp", "bz", "bnz", "ret"):
            leaders.add(i + 1)
        if inst.op in ("jmp", "bz", "bnz") and inst.symbol in label_at:
            leaders.add(label_at[inst.symbol])
        if inst.op == "label":
            leaders.add(i)
    ordered = sorted(x for x in leaders if x < len(insts))
    return [list(range(start, (ordered[k + 1] if k + 1 < len(ordered) else len(insts))))
            for k, start in enumerate(ordered)]


def _reads(inst: MInst) -> list[str]:
    return inst.registers_read()


def _writes(inst: MInst) -> list[str]:
    out = []
    w = inst.register_written()
    if w is not None:
        out.append(w)
    if inst.op in ("call", "callr"):
        out.extend(CALL_CLOBBERS)
    return out


class Liveness:
    """Per-instruction live-after register sets for one function."""

    def __init__(self, fn: MFunc):
        self.fn = fn
        self.blocks = basic_blocks(fn.insts)
        self.live_after: list[set[str]] = [set() for _ in fn.insts]
        self._compute()

    def _compute(self) -> None:
        insts = self.fn.insts
        label_block: dict[str, int] = {}
        for b, idxs in enumerate(self.blocks):
            if idxs and insts[idxs[0]].op == "label":
                label_block[insts[idxs[0]].symbol] = b
        succs: list[list[int]] = []
        for b, idxs in enumerate(self.blocks):
            out: list[int] = []
            last = insts[idxs[-1]] if idxs else None
            if last is not None and last.op == "jmp":
                if last.symbol in label_block:
                    out.append(label_block[last.symbol])
            elif last is not None and last.op in ("bz", "bnz"):
                if last.symbol in label_block:
                    out.append(label_block[last.symbol])
                if b + 1 < len(self.blocks):
                    out.append(b + 1)
            elif last is not None and last.op == "ret":
                pass
            elif b + 1 < len(self.blocks):
                out.append(b + 1)
            succs.append(out)

        live_in: list[set[str]] = [set() for _ in self.blocks]
        changed = True
        while changed:
            changed = False
            for b in range(len(self.blocks) - 1, -1, -1):
                live: set[str] = set()
                for s in succs[b]:
                    live |= live_in[s]
                for i in reversed(self.blocks[b]):
                    self.live_after[i] = set(live)
                    live -= set(_writes(insts[i]))
                    live |= set(_reads(insts[i]))
                if live != live_in[b]:
                    live_in[b] = live
                    changed = True

    def dead_after(self, idx: int, reg: str) -> bool:
        return reg not in self.live_after[idx]

    # -- collection-point queries (used by the allocation-sinking pass) ----

    def call_sites(self) -> list[int]:
        """Indices of every call/callr — the points where a collection
        may run (builtin allocators collect; compiled callees may call
        them transitively)."""
        return [i for i, inst in enumerate(self.fn.insts)
                if inst.op in ("call", "callr")]

    def live_across_calls(self) -> set[str]:
        """Registers whose values survive at least one potential
        collection point.  A register holding the only reference to an
        allocation must appear here for the object to be live across a
        collection at all."""
        out: set[str] = set()
        for i in self.call_sites():
            out |= self.live_after[i]
        return out
