"""AST -> C source text.

Used to render annotated programs (with ``KEEP_LIVE`` / ``GC_same_obj``
spliced in) and in round-trip tests of the parser.  Output is fully
parenthesized inside expressions — like the paper says of its own
preprocessor output, it is "not normally intended for human consumption".
"""

from __future__ import annotations

from . import cast as A
from .ctypes import Array, CType, Function, Pointer, Struct


def type_prefix_suffix(ctype: CType, name: str = "") -> str:
    """Render a declaration of ``name`` with type ``ctype`` (C's inside-out
    declarator syntax)."""
    return _declare(ctype, name)


def _declare(ctype: CType, inner: str) -> str:
    if isinstance(ctype, Pointer):
        return _declare(ctype.target, f"*{inner}")
    if isinstance(ctype, Array):
        if inner.startswith("*"):
            inner = f"({inner})"
        length = "" if ctype.length is None else str(ctype.length)
        return _declare(ctype.element, f"{inner}[{length}]")
    if isinstance(ctype, Function):
        if inner.startswith("*"):
            inner = f"({inner})"
        params = ", ".join(_declare(p, "") for p in ctype.params)
        if ctype.varargs:
            params = f"{params}, ..." if params else "..."
        if not params:
            params = "void"
        return _declare(ctype.ret, f"{inner}({params})")
    base = str(ctype)
    return f"{base} {inner}".rstrip()


def unparse_type(ctype: CType) -> str:
    """Render a type name (abstract declarator)."""
    return _declare(ctype, "")


class Unparser:
    def __init__(self, indent: str = "    "):
        self.indent_unit = indent

    # -- expressions ------------------------------------------------------

    def expr(self, e: A.Expr) -> str:
        if isinstance(e, A.IntLit):
            return str(e.value)
        if isinstance(e, A.FloatLit):
            return repr(e.value)
        if isinstance(e, A.CharLit):
            ch = chr(e.value)
            escaped = {"\n": "\\n", "\t": "\\t", "\0": "\\0", "'": "\\'", "\\": "\\\\"}.get(ch)
            if escaped is None:
                escaped = ch if 32 <= e.value < 127 else f"\\x{e.value:02x}"
            return f"'{escaped}'"
        if isinstance(e, A.StringLit):
            return '"' + _escape_string(e.value) + '"'
        if isinstance(e, A.Ident):
            return e.name
        if isinstance(e, A.Unary):
            return f"{e.op}({self.expr(e.operand)})"
        if isinstance(e, A.Postfix):
            return f"({self.expr(e.operand)}){e.op}"
        if isinstance(e, A.Binary):
            return f"({self.expr(e.left)} {e.op} {self.expr(e.right)})"
        if isinstance(e, A.Assign):
            return f"({self.expr(e.target)} {e.op} {self.expr(e.value)})"
        if isinstance(e, A.Cond):
            return f"({self.expr(e.cond)} ? {self.expr(e.then)} : {self.expr(e.otherwise)})"
        if isinstance(e, A.Comma):
            return "(" + ", ".join(self.expr(item) for item in e.items) + ")"
        if isinstance(e, A.Call):
            args = ", ".join(self.expr(a) for a in e.args)
            return f"{self.expr(e.func)}({args})"
        if isinstance(e, A.Index):
            return f"({self.expr(e.base)})[{self.expr(e.index)}]"
        if isinstance(e, A.Member):
            op = "->" if e.arrow else "."
            return f"({self.expr(e.base)}){op}{e.name}"
        if isinstance(e, A.Cast):
            return f"(({unparse_type(e.to_type)})({self.expr(e.operand)}))"
        if isinstance(e, A.SizeofExpr):
            return f"sizeof({self.expr(e.operand)})"
        if isinstance(e, A.SizeofType):
            return f"sizeof({unparse_type(e.of_type)})"
        if isinstance(e, A.KeepLive):
            if e.checked:
                # Paper: (char (*)) GC_same_obj((void *)(p+1), (void *)(p))
                cast = f"({unparse_type(e.ctype)})" if e.ctype is not None else ""
                return (f"({cast}GC_same_obj((void *)({self.expr(e.value)}), "
                        f"(void *)({self.expr(e.base)})))")
            return f"KEEP_LIVE({self.expr(e.value)}, {self.expr(e.base)})"
        raise NotImplementedError(type(e).__name__)

    # -- statements ---------------------------------------------------------

    def stmt(self, s: A.Node, depth: int = 0) -> str:
        pad = self.indent_unit * depth
        if isinstance(s, A.Block):
            inner = "\n".join(self.stmt(item, depth + 1) for item in s.items)
            return f"{pad}{{\n{inner}\n{pad}}}" if inner else f"{pad}{{\n{pad}}}"
        if isinstance(s, A.ExprStmt):
            return f"{pad};" if s.expr is None else f"{pad}{self.expr(s.expr)};"
        if isinstance(s, A.Decl):
            return pad + self.decl(s)
        if isinstance(s, A.If):
            out = f"{pad}if ({self.expr(s.cond)})\n{self.stmt(s.then, depth + 1)}"
            if s.otherwise is not None:
                out += f"\n{pad}else\n{self.stmt(s.otherwise, depth + 1)}"
            return out
        if isinstance(s, A.While):
            return f"{pad}while ({self.expr(s.cond)})\n{self.stmt(s.body, depth + 1)}"
        if isinstance(s, A.DoWhile):
            return f"{pad}do\n{self.stmt(s.body, depth + 1)}\n{pad}while ({self.expr(s.cond)});"
        if isinstance(s, A.For):
            init = ""
            if isinstance(s.init, A.ExprStmt) and s.init.expr is not None:
                init = self.expr(s.init.expr)
            elif isinstance(s.init, A.Decl):
                init = self.decl(s.init).rstrip(";")
            cond = "" if s.cond is None else self.expr(s.cond)
            step = "" if s.step is None else self.expr(s.step)
            return f"{pad}for ({init}; {cond}; {step})\n{self.stmt(s.body, depth + 1)}"
        if isinstance(s, A.Return):
            return f"{pad}return;" if s.value is None else f"{pad}return {self.expr(s.value)};"
        if isinstance(s, A.Break):
            return f"{pad}break;"
        if isinstance(s, A.Continue):
            return f"{pad}continue;"
        if isinstance(s, A.Switch):
            return f"{pad}switch ({self.expr(s.cond)})\n{self.stmt(s.body, depth + 1)}"
        if isinstance(s, A.Case):
            out = f"{pad}case {self.expr(s.value)}:"
            if s.body is not None:
                out += f"\n{self.stmt(s.body, depth)}"
            return out
        if isinstance(s, A.Default):
            out = f"{pad}default:"
            if s.body is not None:
                out += f"\n{self.stmt(s.body, depth)}"
            return out
        if isinstance(s, A.Goto):
            return f"{pad}goto {s.label};"
        if isinstance(s, A.Label):
            out = f"{pad}{s.name}:"
            if s.body is not None:
                out += f"\n{self.stmt(s.body, depth)}"
            return out
        raise NotImplementedError(type(s).__name__)

    # -- declarations -------------------------------------------------------

    _anon_counter = 0

    def decl(self, d: A.Decl) -> str:
        prefix = ""
        if d.defines_struct and isinstance(d.base_type, Struct):
            # Two newlines: matches the unit-level chunk separator, so
            # re-parsing and re-rendering is a fixpoint.
            prefix = self.struct_definition(d.base_type) + "\n\n"
        parts: list[str] = []
        for dr in d.declarators:
            text = _declare(dr.ctype, dr.name)
            if dr.init is not None:
                text += f" = {self.init(dr.init)}"
            parts.append(text)
        storage = f"{d.storage} " if d.storage else ""
        if not parts:
            return prefix.rstrip("\n") or f"{storage};"
        return f"{prefix}{storage}{'; '.join(parts)};"

    def struct_definition(self, struct: Struct) -> str:
        if struct.tag is None:
            Unparser._anon_counter += 1
            struct.tag = f"__anon_{Unparser._anon_counter}"
        kw = "union" if struct.is_union else "struct"
        fields = " ".join(f"{_declare(f.ctype, f.name)};" for f in struct.fields)
        return f"{kw} {struct.tag} {{ {fields} }};"

    def init(self, node: A.Node) -> str:
        if isinstance(node, A.InitList):
            return "{" + ", ".join(self.init(item) for item in node.items) + "}"
        assert isinstance(node, A.Expr)
        return self.expr(node)

    def funcdef(self, fn: A.FuncDef) -> str:
        assert isinstance(fn.ctype, Function)
        params = ", ".join(_declare(p.ctype, p.name) for p in fn.params)
        if not params:
            params = "void"
        storage = f"{fn.storage} " if fn.storage else ""
        header = _declare(fn.ctype.ret, f"{fn.name}({params})")
        return f"{storage}{header}\n{self.stmt(fn.body)}"

    def unit(self, tu: A.TranslationUnit) -> str:
        chunks: list[str] = []
        for item in tu.items:
            if isinstance(item, A.FuncDef):
                chunks.append(self.funcdef(item))
            elif isinstance(item, A.Decl):
                chunks.append(self.decl(item))
        return "\n\n".join(chunks) + "\n"


def _escape_string(value: str) -> str:
    out = []
    for ch in value:
        if ch == '"':
            out.append('\\"')
        elif ch == "\\":
            out.append("\\\\")
        elif ch == "\n":
            out.append("\\n")
        elif ch == "\t":
            out.append("\\t")
        elif ch == "\0":
            out.append("\\0")
        elif 32 <= ord(ch) < 127:
            out.append(ch)
        else:
            out.append(f"\\x{ord(ch):02x}")
    return "".join(out)


def unparse(node: A.Node) -> str:
    """Render any AST node back to C text."""
    up = Unparser()
    if isinstance(node, A.TranslationUnit):
        return up.unit(node)
    if isinstance(node, A.FuncDef):
        return up.funcdef(node)
    if isinstance(node, A.Expr):
        return up.expr(node)
    return up.stmt(node)
