"""C type model.

Sizes follow the 32-bit ILP32 convention of the paper's machines
(SPARCstation 2/10, Pentium 90): char = 1, short = 2, int = long =
pointer = 4.  Words on the simulated machine are 4 bytes; the heap
allocator and the collector both depend on ``WORD_SIZE``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

WORD_SIZE = 4

_INT_SIZES = {"char": 1, "short": 2, "int": 4, "long": 4}


class CType:
    """Base class for all C types."""

    size: int = 0
    align: int = 1

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, Pointer)

    @property
    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_arithmetic(self) -> bool:
        return isinstance(self, (IntType, FloatType))

    @property
    def is_void(self) -> bool:
        return isinstance(self, Void)

    @property
    def is_array(self) -> bool:
        return isinstance(self, Array)

    @property
    def is_struct(self) -> bool:
        return isinstance(self, Struct)

    @property
    def is_function(self) -> bool:
        return isinstance(self, Function)

    @property
    def is_scalar(self) -> bool:
        return self.is_arithmetic or self.is_pointer

    def decay(self) -> "CType":
        """Array-to-pointer and function-to-pointer decay."""
        if isinstance(self, Array):
            return Pointer(self.element)
        if isinstance(self, Function):
            return Pointer(self)
        return self

    def compatible(self, other: "CType") -> bool:
        """Loose assignment compatibility (the paper's checker is not a
        full conformance checker; it needs pointer-ness, not pedantry)."""
        if self.is_arithmetic and other.is_arithmetic:
            return True
        if self.is_pointer and other.is_pointer:
            return True
        return type(self) is type(other) and self == other


@dataclass(frozen=True)
class Void(CType):
    size: int = 0
    align: int = 1

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class IntType(CType):
    name: str = "int"
    signed: bool = True

    def __str__(self) -> str:
        return self.name if self.signed else f"unsigned {self.name}"

    @property
    def size(self) -> int:  # type: ignore[override]
        return _INT_SIZES[self.name]

    @property
    def align(self) -> int:  # type: ignore[override]
        return self.size


@dataclass(frozen=True)
class FloatType(CType):
    name: str = "double"

    def __str__(self) -> str:
        return self.name

    @property
    def size(self) -> int:  # type: ignore[override]
        return 4 if self.name == "float" else 8

    @property
    def align(self) -> int:  # type: ignore[override]
        return self.size


@dataclass(frozen=True)
class Pointer(CType):
    target: CType = field(default_factory=Void)

    def __str__(self) -> str:
        return f"{self.target}*"

    @property
    def size(self) -> int:  # type: ignore[override]
        return WORD_SIZE

    @property
    def align(self) -> int:  # type: ignore[override]
        return WORD_SIZE


@dataclass(frozen=True)
class Array(CType):
    element: CType = field(default_factory=lambda: IntType("int"))
    length: int | None = None  # None: incomplete, e.g. extern int a[];

    def __str__(self) -> str:
        return f"{self.element}[{'' if self.length is None else self.length}]"

    @property
    def size(self) -> int:  # type: ignore[override]
        return 0 if self.length is None else self.element.size * self.length

    @property
    def align(self) -> int:  # type: ignore[override]
        return self.element.align


@dataclass(frozen=True)
class StructField:
    name: str
    ctype: CType
    offset: int


class Struct(CType):
    """struct or union; fields are laid out eagerly at definition."""

    def __init__(self, tag: str | None, is_union: bool = False):
        self.tag = tag
        self.is_union = is_union
        self.fields: list[StructField] = []
        self._by_name: dict[str, StructField] = {}
        self.size = 0
        self.align = 1
        self.complete = False

    def define(self, members: list[tuple[str, CType]]) -> None:
        offset = 0
        for name, ctype in members:
            if name in self._by_name:
                raise ValueError(f"duplicate field {name!r} in struct {self.tag}")
            self.align = max(self.align, ctype.align)
            if self.is_union:
                fld = StructField(name, ctype, 0)
                self.size = max(self.size, ctype.size)
            else:
                offset = _round_up(offset, ctype.align)
                fld = StructField(name, ctype, offset)
                offset += ctype.size
            self.fields.append(fld)
            self._by_name[name] = fld
        if not self.is_union:
            self.size = _round_up(offset, self.align)
        else:
            self.size = _round_up(self.size, self.align)
        self.complete = True

    def field(self, name: str) -> StructField | None:
        return self._by_name.get(name)

    def __str__(self) -> str:
        kw = "union" if self.is_union else "struct"
        return f"{kw} {self.tag or '<anon>'}"

    def __eq__(self, other: object) -> bool:
        return self is other  # struct identity is nominal

    def __hash__(self) -> int:
        return id(self)


@dataclass(frozen=True)
class Function(CType):
    ret: CType = field(default_factory=Void)
    params: tuple[CType, ...] = ()
    varargs: bool = False

    def __str__(self) -> str:
        parts = [str(p) for p in self.params]
        if self.varargs:
            parts.append("...")
        return f"{self.ret}({', '.join(parts)})"


def _round_up(n: int, align: int) -> int:
    return (n + align - 1) // align * align


# Canonical singletons used throughout the frontend and the compiler.
VOID = Void()
CHAR = IntType("char")
UCHAR = IntType("char", signed=False)
SHORT = IntType("short")
USHORT = IntType("short", signed=False)
INT = IntType("int")
UINT = IntType("int", signed=False)
LONG = IntType("long")
ULONG = IntType("long", signed=False)
DOUBLE = FloatType("double")
FLOAT = FloatType("float")
CHAR_PTR = Pointer(CHAR)
VOID_PTR = Pointer(VOID)


def may_hold_heap_pointer(ctype: CType) -> bool:
    """True when a value of this type can carry a heap pointer.

    The paper restricts attention to heap pointers; pointer-typed values
    (and aggregates containing them) qualify.  Integers do not: the
    source checker warns about int->pointer conversions separately.
    """
    if ctype.is_pointer:
        return True
    if isinstance(ctype, Array):
        return may_hold_heap_pointer(ctype.element)
    if isinstance(ctype, Struct):
        return any(may_hold_heap_pointer(f.ctype) for f in ctype.fields)
    return False
