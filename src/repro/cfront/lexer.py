"""Tokenizer for the ANSI C subset accepted by the frontend.

The token stream keeps exact character offsets into the original text so
that the annotator can splice ``KEEP_LIVE`` calls into the source without
reformatting it — the strategy the paper's preprocessor uses ("a list of
insertions and deletions, sorted by character position").

The scanner is a single precompiled master regex: one ``match`` per
token (or run of trivia) instead of a character-at-a-time loop with a
longest-first linear probe of the operator table.  Every compile starts
here, so scanning speed is front-end throughput.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .errors import LexError

KEYWORDS = frozenset(
    """auto break case char const continue default do double else enum extern
    float for goto if int long register return short signed sizeof static
    struct switch typedef union unsigned void volatile while""".split()
)

# Longest-match-first operator table.
_OPERATORS = sorted(
    [
        ">>=", "<<=", "...",
        "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
        "+=", "-=", "*=", "/=", "%=", "&=", "^=", "|=",
        "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
        "?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
    ],
    key=len,
    reverse=True,
)

_IDENT_START = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")

# One alternative per token class; ordering encodes precedence
# (hex before float before decimal; a closed comment/string/char
# literal before its unterminated-prefix alternative, which exists only
# to produce the right LexError).  Integer/float suffixes are folded
# into the literal text and stripped again when the value is computed,
# mirroring the scanning loop this replaces.
_MASTER_RE = re.compile(
    r"""(?P<ws>[ \t\r\n\f\v]+)
      | (?P<lcomment>//[^\n]*)
      | (?P<bcomment>/\*.*?\*/)
      | (?P<badcomment>/\*)
      | (?P<hash>\#[^\n]*)
      | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
      | (?P<num>0[xX][0-9a-fA-F]+[uUlL]*
          | (?:[0-9]+\.[0-9]*|\.[0-9]+)(?:[eE][+-]?[0-9]+)?[fFlL]?
          | [0-9]+[eE][+-]?[0-9]+[fFlL]?
          | [0-9]+[uUlL]*)
      | (?P<string>"(?:[^"\\]|\\.)*")
      | (?P<badstring>")
      | (?P<char>'(?:[^'\\]|\\.)*')
      | (?P<badchar>')
      | (?P<op>OPS)
    """.replace("OPS", "|".join(re.escape(op) for op in _OPERATORS)),
    re.VERBOSE | re.DOTALL)

_SIMPLE_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\",
    "'": "'", '"': '"', "a": "\a", "b": "\b", "f": "\f", "v": "\v",
}


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``kind`` is one of: ``ident``, ``keyword``, ``int``, ``float``,
    ``char``, ``string``, ``op``, ``eof``.  ``value`` holds the decoded
    payload (int for ``int``/``char``, str otherwise).
    """

    kind: str
    text: str
    value: object
    pos: int

    @property
    def end(self) -> int:
        return self.pos + len(self.text)

    def __repr__(self) -> str:  # compact, for parser error messages
        return f"Token({self.kind!r}, {self.text!r}, @{self.pos})"


def decode_escapes(body: str, pos: int, source: str) -> str:
    """Decode C escape sequences in a string/char literal body."""
    out: list[str] = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch != "\\":
            out.append(ch)
            i += 1
            continue
        if i + 1 >= len(body):
            raise LexError("trailing backslash in literal", pos, source)
        esc = body[i + 1]
        if esc in _SIMPLE_ESCAPES:
            out.append(_SIMPLE_ESCAPES[esc])
            i += 2
        elif esc == "x":
            j = i + 2
            while j < len(body) and body[j] in "0123456789abcdefABCDEF":
                j += 1
            if j == i + 2:
                raise LexError("\\x with no hex digits", pos, source)
            out.append(chr(int(body[i + 2 : j], 16)))
            i = j
        elif esc in "01234567":
            j = i + 1
            while j < len(body) and j < i + 4 and body[j] in "01234567":
                j += 1
            out.append(chr(int(body[i + 1 : j], 8)))
            i = j
        else:
            raise LexError(f"unknown escape sequence \\{esc}", pos, source)
    return "".join(out)


class Lexer:
    """Produces the full token list for a translation unit."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0

    def tokenize(self) -> list[Token]:
        src = self.source
        n = len(src)
        tokens: list[Token] = []
        append = tokens.append
        match = _MASTER_RE.match
        pos = self.pos
        while pos < n:
            m = match(src, pos)
            if m is None:
                raise LexError(f"unexpected character {src[pos]!r}", pos, src)
            kind = m.lastgroup
            end = m.end()
            if kind == "ws" or kind == "lcomment" or kind == "bcomment" or kind == "hash":
                pos = end
                continue
            text = m.group()
            if kind == "ident":
                append(Token("keyword" if text in KEYWORDS else "ident",
                             text, text, pos))
            elif kind == "num":
                append(_number_token(text, pos))
            elif kind == "op":
                append(Token("op", text, text, pos))
            elif kind == "string":
                body = decode_escapes(text[1:-1], pos, src)
                if tokens and tokens[-1].kind == "string":
                    # Adjacent string literal concatenation: the merged
                    # token spans from the first opening quote through
                    # the last closing quote, trivia included.
                    prev = tokens[-1]
                    tokens[-1] = Token("string", src[prev.pos:end],
                                       prev.value + body, prev.pos)
                else:
                    append(Token("string", text, body, pos))
            elif kind == "char":
                body = decode_escapes(text[1:-1], pos, src)
                if len(body) != 1:
                    raise LexError(
                        "character literal must contain exactly one character",
                        pos, src)
                append(Token("char", text, ord(body), pos))
            elif kind == "badcomment":
                raise LexError("unterminated comment", pos, src)
            elif kind == "badstring":
                raise LexError("unterminated string literal", pos, src)
            else:  # badchar
                raise LexError("unterminated character literal", pos, src)
            pos = end
        self.pos = pos
        append(Token("eof", "", None, pos))
        return tokens


_INT_SUFFIXES = "uUlL"
_FLOAT_SUFFIXES = "fFlL"


def _number_token(text: str, pos: int) -> Token:
    if text[0] in "0" and len(text) > 1 and text[1] in "xX":
        return Token("int", text, int(text.rstrip(_INT_SUFFIXES), 16), pos)
    if "." in text or "e" in text or "E" in text:
        return Token("float", text, float(text.rstrip(_FLOAT_SUFFIXES)), pos)
    digits = text.rstrip(_INT_SUFFIXES)
    base = 8 if digits.startswith("0") and len(digits) > 1 else 10
    return Token("int", text, int(digits, base), pos)


def tokenize(source: str) -> list[Token]:
    """Convenience wrapper: lex ``source`` into a token list ending in EOF."""
    return Lexer(source).tokenize()
