"""Tokenizer for the ANSI C subset accepted by the frontend.

The token stream keeps exact character offsets into the original text so
that the annotator can splice ``KEEP_LIVE`` calls into the source without
reformatting it — the strategy the paper's preprocessor uses ("a list of
insertions and deletions, sorted by character position").
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import LexError

KEYWORDS = frozenset(
    """auto break case char const continue default do double else enum extern
    float for goto if int long register return short signed sizeof static
    struct switch typedef union unsigned void volatile while""".split()
)

# Longest-match-first operator table.
_OPERATORS = sorted(
    [
        ">>=", "<<=", "...",
        "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
        "+=", "-=", "*=", "/=", "%=", "&=", "^=", "|=",
        "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
        "?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
    ],
    key=len,
    reverse=True,
)

_IDENT_START = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")

_SIMPLE_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\",
    "'": "'", '"': '"', "a": "\a", "b": "\b", "f": "\f", "v": "\v",
}


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``kind`` is one of: ``ident``, ``keyword``, ``int``, ``float``,
    ``char``, ``string``, ``op``, ``eof``.  ``value`` holds the decoded
    payload (int for ``int``/``char``, str otherwise).
    """

    kind: str
    text: str
    value: object
    pos: int

    @property
    def end(self) -> int:
        return self.pos + len(self.text)

    def __repr__(self) -> str:  # compact, for parser error messages
        return f"Token({self.kind!r}, {self.text!r}, @{self.pos})"


def decode_escapes(body: str, pos: int, source: str) -> str:
    """Decode C escape sequences in a string/char literal body."""
    out: list[str] = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch != "\\":
            out.append(ch)
            i += 1
            continue
        if i + 1 >= len(body):
            raise LexError("trailing backslash in literal", pos, source)
        esc = body[i + 1]
        if esc in _SIMPLE_ESCAPES:
            out.append(_SIMPLE_ESCAPES[esc])
            i += 2
        elif esc == "x":
            j = i + 2
            while j < len(body) and body[j] in "0123456789abcdefABCDEF":
                j += 1
            if j == i + 2:
                raise LexError("\\x with no hex digits", pos, source)
            out.append(chr(int(body[i + 2 : j], 16)))
            i = j
        elif esc in "01234567":
            j = i + 1
            while j < len(body) and j < i + 4 and body[j] in "01234567":
                j += 1
            out.append(chr(int(body[i + 1 : j], 8)))
            i = j
        else:
            raise LexError(f"unknown escape sequence \\{esc}", pos, source)
    return "".join(out)


class Lexer:
    """Produces the full token list for a translation unit."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0

    def tokenize(self) -> list[Token]:
        tokens: list[Token] = []
        while True:
            tok = self._next()
            tokens.append(tok)
            if tok.kind == "eof":
                return tokens

    # ------------------------------------------------------------------

    def _skip_trivia(self) -> None:
        src, n = self.source, len(self.source)
        while self.pos < n:
            ch = src[self.pos]
            if ch in " \t\r\n\f\v":
                self.pos += 1
            elif src.startswith("//", self.pos):
                nl = src.find("\n", self.pos)
                self.pos = n if nl < 0 else nl + 1
            elif src.startswith("/*", self.pos):
                close = src.find("*/", self.pos + 2)
                if close < 0:
                    raise LexError("unterminated comment", self.pos, src)
                self.pos = close + 2
            elif ch == "#":
                # Line markers emitted by the mini preprocessor; skip the line.
                nl = src.find("\n", self.pos)
                self.pos = n if nl < 0 else nl + 1
            else:
                return

    def _next(self) -> Token:
        self._skip_trivia()
        src = self.source
        start = self.pos
        if start >= len(src):
            return Token("eof", "", None, start)
        ch = src[start]
        if ch in _IDENT_START:
            return self._ident(start)
        if ch in _DIGITS or (ch == "." and start + 1 < len(src) and src[start + 1] in _DIGITS):
            return self._number(start)
        if ch == '"':
            return self._string(start)
        if ch == "'":
            return self._char(start)
        for op in _OPERATORS:
            if src.startswith(op, start):
                self.pos = start + len(op)
                return Token("op", op, op, start)
        raise LexError(f"unexpected character {ch!r}", start, src)

    def _ident(self, start: int) -> Token:
        src = self.source
        i = start + 1
        while i < len(src) and src[i] in _IDENT_CONT:
            i += 1
        self.pos = i
        text = src[start:i]
        kind = "keyword" if text in KEYWORDS else "ident"
        return Token(kind, text, text, start)

    def _number(self, start: int) -> Token:
        src = self.source
        i = start
        is_float = False
        if src.startswith(("0x", "0X"), start):
            i = start + 2
            while i < len(src) and src[i] in "0123456789abcdefABCDEF":
                i += 1
            value = int(src[start:i], 16)
        else:
            while i < len(src) and src[i] in _DIGITS:
                i += 1
            if i < len(src) and src[i] == "." :
                is_float = True
                i += 1
                while i < len(src) and src[i] in _DIGITS:
                    i += 1
            if i < len(src) and src[i] in "eE":
                is_float = True
                i += 1
                if i < len(src) and src[i] in "+-":
                    i += 1
                while i < len(src) and src[i] in _DIGITS:
                    i += 1
            text = src[start:i]
            value = float(text) if is_float else int(text, 8 if text.startswith("0") and len(text) > 1 else 10)
        # integer suffixes
        while not is_float and i < len(src) and src[i] in "uUlL":
            i += 1
        if is_float and i < len(src) and src[i] in "fFlL":
            i += 1
        self.pos = i
        return Token("float" if is_float else "int", src[start:i], value, start)

    def _string(self, start: int) -> Token:
        src = self.source
        i = start + 1
        while i < len(src) and src[i] != '"':
            i += 2 if src[i] == "\\" else 1
        if i >= len(src):
            raise LexError("unterminated string literal", start, src)
        body = decode_escapes(src[start + 1 : i], start, src)
        self.pos = i + 1
        # Adjacent string literal concatenation.
        save = self.pos
        self._skip_trivia()
        if self.pos < len(src) and src[self.pos] == '"':
            nxt = self._string(self.pos)
            return Token("string", src[start : nxt.pos + len(nxt.text)], body + nxt.value, start)
        self.pos = save
        return Token("string", src[start : i + 1], body, start)

    def _char(self, start: int) -> Token:
        src = self.source
        i = start + 1
        while i < len(src) and src[i] != "'":
            i += 2 if src[i] == "\\" else 1
        if i >= len(src):
            raise LexError("unterminated character literal", start, src)
        body = decode_escapes(src[start + 1 : i], start, src)
        if len(body) != 1:
            raise LexError("character literal must contain exactly one character", start, src)
        self.pos = i + 1
        return Token("char", src[start : i + 1], ord(body), start)


def tokenize(source: str) -> list[Token]:
    """Convenience wrapper: lex ``source`` into a token list ending in EOF."""
    return Lexer(source).tokenize()
