"""AST node definitions for the C subset.

Every node records a :class:`SourceSpan` into the original text.
Expression nodes additionally carry ``ctype`` and ``is_lvalue``, filled
in by :mod:`repro.cfront.typecheck`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .ctypes import CType
from .errors import SourceSpan

NO_SPAN = SourceSpan(-1, -1)


@dataclass
class Node:
    span: SourceSpan = field(default=NO_SPAN, kw_only=True)


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass
class Expr(Node):
    ctype: Optional[CType] = field(default=None, kw_only=True)
    is_lvalue: bool = field(default=False, kw_only=True)


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class CharLit(Expr):
    value: int = 0


@dataclass
class StringLit(Expr):
    value: str = ""


@dataclass
class Ident(Expr):
    name: str = ""


@dataclass
class Unary(Expr):
    """Prefix unary: one of - + ! ~ * & ++ --  (``*`` is dereference)."""

    op: str = ""
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class Postfix(Expr):
    """Postfix ``++`` or ``--``."""

    op: str = ""
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class Binary(Expr):
    op: str = ""
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass
class Assign(Expr):
    """Assignment, including compound ops: = += -= *= /= %= &= |= ^= <<= >>="""

    op: str = "="
    target: Expr = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]


@dataclass
class Cond(Expr):
    cond: Expr = None  # type: ignore[assignment]
    then: Expr = None  # type: ignore[assignment]
    otherwise: Expr = None  # type: ignore[assignment]


@dataclass
class Comma(Expr):
    items: list[Expr] = field(default_factory=list)


@dataclass
class Call(Expr):
    func: Expr = None  # type: ignore[assignment]
    args: list[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    """``base[index]``; kept distinct from *(base+index) so the annotator
    can reason about BASEADDR(e1[e2]) directly, as the paper does."""

    base: Expr = None  # type: ignore[assignment]
    index: Expr = None  # type: ignore[assignment]


@dataclass
class Member(Expr):
    """``base.name`` (arrow=False) or ``base->name`` (arrow=True)."""

    base: Expr = None  # type: ignore[assignment]
    name: str = ""
    arrow: bool = False


@dataclass
class Cast(Expr):
    to_type: CType = None  # type: ignore[assignment]
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class SizeofExpr(Expr):
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class SizeofType(Expr):
    of_type: CType = None  # type: ignore[assignment]


@dataclass
class KeepLive(Expr):
    """Synthetic node produced by the annotator: KEEP_LIVE(value, base).

    ``checked`` marks debugging mode, where this lowers to a real
    ``GC_same_obj`` call rather than the opaque compiler barrier.
    """

    value: Expr = None  # type: ignore[assignment]
    base: Expr = None  # type: ignore[assignment]
    checked: bool = False


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None  # None: empty statement ';'


@dataclass
class Block(Stmt):
    items: list[Node] = field(default_factory=list)  # Stmt or Decl


@dataclass
class If(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then: Stmt = None  # type: ignore[assignment]
    otherwise: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    body: Stmt = None  # type: ignore[assignment]


@dataclass
class DoWhile(Stmt):
    body: Stmt = None  # type: ignore[assignment]
    cond: Expr = None  # type: ignore[assignment]


@dataclass
class For(Stmt):
    init: Optional[Node] = None  # ExprStmt or Decl
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Stmt = None  # type: ignore[assignment]


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Switch(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    body: Stmt = None  # type: ignore[assignment]


@dataclass
class Case(Stmt):
    value: Expr = None  # type: ignore[assignment]
    body: Optional[Stmt] = None


@dataclass
class Default(Stmt):
    body: Optional[Stmt] = None


@dataclass
class Goto(Stmt):
    label: str = ""


@dataclass
class Label(Stmt):
    name: str = ""
    body: Optional[Stmt] = None


# --------------------------------------------------------------------------
# Declarations
# --------------------------------------------------------------------------


@dataclass
class Declarator(Node):
    """One declared name with its full type and optional initializer."""

    name: str = ""
    ctype: CType = None  # type: ignore[assignment]
    init: Optional[Node] = None  # Expr or InitList


@dataclass
class InitList(Node):
    items: list[Node] = field(default_factory=list)  # Expr or InitList


@dataclass
class Decl(Stmt):
    """A declaration statement (file or block scope)."""

    declarators: list[Declarator] = field(default_factory=list)
    storage: Optional[str] = None  # 'static' | 'extern' | 'typedef' | ...
    base_type: Optional[CType] = None  # the declaration-specifier type
    defines_struct: bool = False  # True when the specifier carried a struct body


@dataclass
class ParamDecl(Node):
    name: str = ""
    ctype: CType = None  # type: ignore[assignment]


@dataclass
class FuncDef(Node):
    name: str = ""
    ctype: CType = None  # type: ignore[assignment]  # Function type
    params: list[ParamDecl] = field(default_factory=list)
    body: Block = None  # type: ignore[assignment]
    storage: Optional[str] = None


@dataclass
class TranslationUnit(Node):
    items: list[Node] = field(default_factory=list)  # FuncDef or Decl
    source: str = ""


def walk(node: Node):
    """Yield ``node`` and all descendants, pre-order."""
    yield node
    for child in children(node):
        yield from walk(child)


def children(node: Node) -> list[Node]:
    """Direct child nodes, in source order."""
    out: list[Node] = []
    for value in vars(node).values():
        if isinstance(value, Node):
            out.append(value)
        elif isinstance(value, list):
            out.extend(v for v in value if isinstance(v, Node))
    return out
