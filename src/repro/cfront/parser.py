"""Recursive-descent parser for the ANSI C subset.

Produces :mod:`repro.cfront.cast` trees.  The parser resolves types as it
goes (it must, to disambiguate typedef names from identifiers, the
classic C lexer feedback problem), so struct layout and typedef
resolution are complete by the time parsing finishes.

The subset covers what the paper's preprocessor and our workloads need:
all of C's expression grammar, pointers/arrays/structs/unions/enums,
typedefs, function definitions and prototypes, the full statement set
including ``switch`` and ``goto``, initializer lists, and casts.  Not
supported: bitfields, K&R-style parameter declarations, ``long long``.
"""

from __future__ import annotations

from . import cast as A
from .ctypes import (
    CHAR, CType, DOUBLE, FLOAT, Function, INT, IntType, Array, Pointer,
    Struct, VOID, Void,
)
from .errors import ParseError, SourceSpan
from .lexer import Token, tokenize

_TYPE_SPECIFIER_KEYWORDS = frozenset(
    "void char short int long float double signed unsigned struct union enum".split()
)
_STORAGE_KEYWORDS = frozenset("typedef extern static auto register".split())
_QUALIFIER_KEYWORDS = frozenset("const volatile".split())

_ASSIGN_OPS = frozenset("= += -= *= /= %= &= |= ^= <<= >>=".split())


class _Scope:
    """Tracks typedef names and struct/union/enum tags per lexical scope."""

    def __init__(self, parent: "_Scope | None" = None):
        self.parent = parent
        self.typedefs: dict[str, CType] = {}
        self.tags: dict[str, Struct] = {}
        self.enum_consts: dict[str, int] = {}

    def lookup_typedef(self, name: str) -> CType | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.typedefs:
                return scope.typedefs[name]
            scope = scope.parent
        return None

    def lookup_tag(self, name: str) -> Struct | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.tags:
                return scope.tags[name]
            scope = scope.parent
        return None

    def lookup_enum(self, name: str) -> int | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.enum_consts:
                return scope.enum_consts[name]
            scope = scope.parent
        return None


class Parser:
    def __init__(self, source: str):
        self.source = source
        self.tokens = tokenize(source)
        self.i = 0
        self.scope = _Scope()
        self._pending_struct_def: Struct | None = None

    # -- token plumbing ---------------------------------------------------

    @property
    def tok(self) -> Token:
        return self.tokens[self.i]

    def peek(self, ahead: int = 1) -> Token:
        j = min(self.i + ahead, len(self.tokens) - 1)
        return self.tokens[j]

    def advance(self) -> Token:
        tok = self.tokens[self.i]
        if tok.kind != "eof":
            self.i += 1
        return tok

    def at(self, text: str) -> bool:
        return self.tok.text == text and self.tok.kind in ("op", "keyword")

    def accept(self, text: str) -> Token | None:
        if self.at(text):
            return self.advance()
        return None

    def expect(self, text: str) -> Token:
        if not self.at(text):
            raise ParseError(f"expected {text!r}, got {self.tok.text!r}", self.tok.pos, self.source)
        return self.advance()

    def _span(self, start: int) -> SourceSpan:
        end = self.tokens[self.i - 1].end if self.i > 0 else start
        return SourceSpan(start, end)

    # -- scope ------------------------------------------------------------

    def _push_scope(self) -> None:
        self.scope = _Scope(self.scope)

    def _pop_scope(self) -> None:
        assert self.scope.parent is not None
        self.scope = self.scope.parent

    # -- entry ------------------------------------------------------------

    def parse(self) -> A.TranslationUnit:
        items: list[A.Node] = []
        while self.tok.kind != "eof":
            items.append(self._external_declaration())
        return A.TranslationUnit(items=items, source=self.source,
                                 span=SourceSpan(0, len(self.source)))

    # -- declarations -----------------------------------------------------

    def _starts_declaration(self) -> bool:
        tok = self.tok
        if tok.kind == "keyword":
            return tok.text in _TYPE_SPECIFIER_KEYWORDS | _STORAGE_KEYWORDS | _QUALIFIER_KEYWORDS
        if tok.kind == "ident":
            return self.scope.lookup_typedef(tok.text) is not None
        return False

    def _external_declaration(self) -> A.Node:
        start = self.tok.pos
        if self.accept(";"):  # stray file-scope semicolon
            return A.Decl(declarators=[], storage=None, span=self._span(start))
        self._pending_struct_def = None
        storage, base = self._declaration_specifiers()
        defines = self._pending_struct_def is base and base is not None
        if self.accept(";"):
            # e.g. bare "struct foo { ... };"
            return A.Decl(declarators=[], storage=storage, base_type=base,
                          defines_struct=defines, span=self._span(start))
        name, ctype, params = self._declarator(base)
        if isinstance(ctype, Function) and self.at("{"):
            return self._function_definition(start, name, ctype, params, storage)
        return self._finish_declaration(start, storage, name, ctype,
                                        base_type=base, defines_struct=defines)

    def _function_definition(self, start: int, name: str, ctype: Function,
                             params: list[A.ParamDecl], storage: str | None) -> A.FuncDef:
        self._push_scope()
        body = self._block()
        self._pop_scope()
        return A.FuncDef(name=name, ctype=ctype, params=params, body=body,
                         storage=storage, span=self._span(start))

    def _finish_declaration(self, start: int, storage: str | None,
                            first_name: str, first_type: CType,
                            base_type: CType | None = None,
                            defines_struct: bool = False) -> A.Decl:
        shared_base = self._decl_base  # specifier type shared by all declarators
        declarators = [self._init_declarator(first_name, first_type, storage)]
        while self.accept(","):
            name, ctype, _ = self._declarator(shared_base)
            declarators.append(self._init_declarator(name, ctype, storage))
        self.expect(";")
        return A.Decl(declarators=declarators, storage=storage,
                      base_type=base_type if base_type is not None else shared_base,
                      defines_struct=defines_struct, span=self._span(start))

    def _init_declarator(self, name: str, ctype: CType, storage: str | None) -> A.Declarator:
        start = self.tok.pos
        init: A.Node | None = None
        if self.accept("="):
            init = self._initializer()
        if storage == "typedef":
            self.scope.typedefs[name] = ctype
        if isinstance(ctype, Array) and ctype.length is None and isinstance(init, A.InitList):
            ctype = Array(ctype.element, len(init.items))
        if isinstance(ctype, Array) and ctype.length is None and isinstance(init, A.StringLit):
            ctype = Array(ctype.element, len(init.value) + 1)
        return A.Declarator(name=name, ctype=ctype, init=init, span=self._span(start))

    def _initializer(self) -> A.Node:
        if self.at("{"):
            start = self.expect("{").pos
            items: list[A.Node] = []
            while not self.at("}"):
                items.append(self._initializer())
                if not self.accept(","):
                    break
            self.expect("}")
            return A.InitList(items=items, span=self._span(start))
        return self._assignment()

    def _declaration_specifiers(self) -> tuple[str | None, CType]:
        storage: str | None = None
        seen: list[str] = []
        ctype: CType | None = None
        while True:
            tok = self.tok
            if tok.kind == "keyword" and tok.text in _STORAGE_KEYWORDS:
                self.advance()
                if tok.text in ("typedef", "extern", "static"):
                    storage = tok.text
            elif tok.kind == "keyword" and tok.text in _QUALIFIER_KEYWORDS:
                self.advance()
            elif tok.kind == "keyword" and tok.text in ("struct", "union"):
                ctype = self._struct_specifier()
            elif tok.kind == "keyword" and tok.text == "enum":
                ctype = self._enum_specifier()
            elif tok.kind == "keyword" and tok.text in _TYPE_SPECIFIER_KEYWORDS:
                seen.append(tok.text)
                self.advance()
            elif (tok.kind == "ident" and ctype is None and not seen
                  and self.scope.lookup_typedef(tok.text) is not None):
                ctype = self.scope.lookup_typedef(tok.text)
                self.advance()
            else:
                break
        if ctype is not None:
            return storage, ctype
        if not seen:
            raise ParseError("expected type specifier", self.tok.pos, self.source)
        return storage, _combine_int_specifiers(seen, self.tok.pos, self.source)

    def _struct_specifier(self) -> Struct:
        kw = self.advance()  # struct | union
        is_union = kw.text == "union"
        tag: str | None = None
        if self.tok.kind == "ident":
            tag = self.advance().text
        if self.at("{"):
            if tag is not None:
                struct = self.scope.tags.get(tag)
                if struct is None or struct.complete:
                    struct = Struct(tag, is_union)
                    self.scope.tags[tag] = struct
            else:
                struct = Struct(None, is_union)
            self.advance()
            members: list[tuple[str, CType]] = []
            while not self.at("}"):
                _, base = self._declaration_specifiers()
                self._decl_base = base
                while True:
                    name, ctype, _ = self._declarator(base)
                    members.append((name, ctype))
                    if not self.accept(","):
                        break
                self.expect(";")
            self.expect("}")
            struct.define(members)
            self._pending_struct_def = struct
            return struct
        if tag is None:
            raise ParseError("struct specifier needs a tag or body", self.tok.pos, self.source)
        struct = self.scope.lookup_tag(tag)
        if struct is None:
            struct = Struct(tag, is_union)
            self.scope.tags[tag] = struct
        return struct

    def _enum_specifier(self) -> CType:
        self.advance()  # enum
        if self.tok.kind == "ident":
            self.advance()  # tag (we model enums as int)
        if self.accept("{"):
            value = 0
            while not self.at("}"):
                name = self.advance().text
                if self.accept("="):
                    value = self._const_int(self._conditional())
                self.scope.enum_consts[name] = value
                value += 1
                if not self.accept(","):
                    break
            self.expect("}")
        return INT

    def _const_int(self, expr: A.Expr) -> int:
        """Evaluate a constant integer expression (array sizes, enum values)."""
        if isinstance(expr, A.IntLit):
            return expr.value
        if isinstance(expr, A.CharLit):
            return expr.value
        if isinstance(expr, A.Ident):
            val = self.scope.lookup_enum(expr.name)
            if val is not None:
                return val
        if isinstance(expr, A.Unary) and expr.op == "-":
            return -self._const_int(expr.operand)
        if isinstance(expr, A.Binary):
            lhs, rhs = self._const_int(expr.left), self._const_int(expr.right)
            ops = {
                "+": lambda a, b: a + b, "-": lambda a, b: a - b,
                "*": lambda a, b: a * b, "/": lambda a, b: a // b,
                "%": lambda a, b: a % b, "<<": lambda a, b: a << b,
                ">>": lambda a, b: a >> b, "|": lambda a, b: a | b,
                "&": lambda a, b: a & b, "^": lambda a, b: a ^ b,
            }
            if expr.op in ops:
                return ops[expr.op](lhs, rhs)
        if isinstance(expr, (A.SizeofType, A.SizeofExpr)):
            if isinstance(expr, A.SizeofType):
                return expr.of_type.size
        raise ParseError("expected constant integer expression",
                         expr.span.start, self.source)

    # -- declarators --------------------------------------------------------

    _decl_base: CType = INT  # shared specifier type across a declarator list

    def _declarator(self, base: CType) -> tuple[str, CType, list[A.ParamDecl]]:
        self._decl_base = base
        while self.accept("*"):
            while self.tok.kind == "keyword" and self.tok.text in _QUALIFIER_KEYWORDS:
                self.advance()
            base = Pointer(base)
        return self._direct_declarator(base)

    def _direct_declarator(self, base: CType) -> tuple[str, CType, list[A.ParamDecl]]:
        params: list[A.ParamDecl] = []
        if self.at("("):
            # Could be a parenthesized declarator: (*name)(...) / (*name)[...]
            self.advance()
            name, inner_hole, params = self._declarator_hole()
            self.expect(")")
            suffix = self._declarator_suffix(base)
            ctype = inner_hole(suffix[0])
            if suffix[1]:
                params = suffix[1]
            return name, ctype, params
        if self.tok.kind != "ident":
            # Abstract declarator (no name), used in casts and prototypes.
            ctype, params = self._declarator_suffix(base)
            return "", ctype, params
        name = self.advance().text
        ctype, params = self._declarator_suffix(base)
        return name, ctype, params

    def _declarator_hole(self):
        """Parse the inside of a parenthesized declarator; return
        (name, fill, params) where fill(base) plugs the outer type in."""
        wraps: list[str] = []
        while self.accept("*"):
            while self.tok.kind == "keyword" and self.tok.text in _QUALIFIER_KEYWORDS:
                self.advance()
            wraps.append("*")
        name = ""
        if self.tok.kind == "ident":
            name = self.advance().text
        suffixes: list[tuple[str, object]] = []
        params: list[A.ParamDecl] = []
        while True:
            if self.at("["):
                self.advance()
                length = None if self.at("]") else self._const_int(self._conditional())
                self.expect("]")
                suffixes.append(("[]", length))
            elif self.at("("):
                sig, params = self._param_list()
                suffixes.append(("()", sig))
            else:
                break

        def fill(base: CType) -> CType:
            # Inside the parens, suffixes bind tighter than '*'s:
            # (*ops[2])(int) is an array of pointers to functions, so the
            # pointers wrap the outer type first, then the suffixes apply.
            ctype = base
            for _ in wraps:
                ctype = Pointer(ctype)
            for kind, payload in reversed(suffixes):
                if kind == "[]":
                    ctype = Array(ctype, payload)  # type: ignore[arg-type]
                else:
                    ret, ptypes, varargs = payload  # type: ignore[misc]
                    ctype = Function(ctype, ptypes, varargs)
            return ctype

        # For function declarator suffixes we stored only param types;
        # normalize payloads.
        fixed: list[tuple[str, object]] = []
        for kind, payload in suffixes:
            if kind == "()":
                ptypes, varargs, _pdecls = payload  # type: ignore[misc]
                fixed.append((kind, (None, ptypes, varargs)))
            else:
                fixed.append((kind, payload))
        suffixes = fixed
        return name, fill, params

    def _declarator_suffix(self, base: CType) -> tuple[CType, list[A.ParamDecl]]:
        if self.at("("):
            ptypes, varargs, pdecls = self._param_list()
            ret, _ = self._declarator_suffix(base)
            return Function(ret, ptypes, varargs), pdecls
        if self.at("["):
            self.advance()
            length = None if self.at("]") else self._const_int(self._conditional())
            self.expect("]")
            element, _ = self._declarator_suffix(base)
            return Array(element, length), []
        return base, []

    def _param_list(self) -> tuple[tuple[CType, ...], bool, list[A.ParamDecl]]:
        self.expect("(")
        ptypes: list[CType] = []
        pdecls: list[A.ParamDecl] = []
        varargs = False
        if self.accept(")"):
            return tuple(ptypes), varargs, pdecls
        if self.at("void") and self.peek().text == ")":
            self.advance()
            self.expect(")")
            return tuple(ptypes), varargs, pdecls
        while True:
            if self.accept("..."):
                varargs = True
                break
            start = self.tok.pos
            _, base = self._declaration_specifiers()
            name, ctype, _ = self._declarator(base)
            ctype = ctype.decay()
            ptypes.append(ctype)
            pdecls.append(A.ParamDecl(name=name, ctype=ctype, span=self._span(start)))
            if not self.accept(","):
                break
        self.expect(")")
        return tuple(ptypes), varargs, pdecls

    def _type_name(self) -> CType:
        _, base = self._declaration_specifiers()
        name, ctype, _ = self._declarator(base)
        if name:
            raise ParseError("type name must be abstract", self.tok.pos, self.source)
        return ctype

    # -- statements ---------------------------------------------------------

    def _block(self) -> A.Block:
        start = self.expect("{").pos
        self._push_scope()
        items: list[A.Node] = []
        while not self.at("}"):
            items.append(self._block_item())
        self.expect("}")
        self._pop_scope()
        return A.Block(items=items, span=self._span(start))

    def _block_item(self) -> A.Node:
        if self._starts_declaration():
            start = self.tok.pos
            self._pending_struct_def = None
            storage, base = self._declaration_specifiers()
            defines = self._pending_struct_def is base
            if self.accept(";"):
                return A.Decl(declarators=[], storage=storage, base_type=base,
                              defines_struct=defines, span=self._span(start))
            name, ctype, _ = self._declarator(base)
            return self._finish_declaration(start, storage, name, ctype,
                                            base_type=base, defines_struct=defines)
        return self._statement()

    def _statement(self) -> A.Stmt:
        start = self.tok.pos
        tok = self.tok
        if self.at("{"):
            return self._block()
        if self.at(";"):
            self.advance()
            return A.ExprStmt(expr=None, span=self._span(start))
        if tok.kind == "keyword":
            handler = {
                "if": self._if, "while": self._while, "do": self._do_while,
                "for": self._for, "return": self._return, "switch": self._switch,
            }.get(tok.text)
            if handler is not None:
                return handler()
            if tok.text == "break":
                self.advance()
                self.expect(";")
                return A.Break(span=self._span(start))
            if tok.text == "continue":
                self.advance()
                self.expect(";")
                return A.Continue(span=self._span(start))
            if tok.text == "goto":
                self.advance()
                label = self.advance().text
                self.expect(";")
                return A.Goto(label=label, span=self._span(start))
            if tok.text == "case":
                self.advance()
                value = self._conditional()
                self.expect(":")
                body = None if self.at("case") or self.at("default") or self.at("}") else self._statement()
                return A.Case(value=value, body=body, span=self._span(start))
            if tok.text == "default":
                self.advance()
                self.expect(":")
                body = None if self.at("case") or self.at("}") else self._statement()
                return A.Default(body=body, span=self._span(start))
        if tok.kind == "ident" and self.peek().text == ":" and self.scope.lookup_enum(tok.text) is None:
            name = self.advance().text
            self.expect(":")
            body = None if self.at("}") else self._statement()
            return A.Label(name=name, body=body, span=self._span(start))
        expr = self._expression()
        self.expect(";")
        return A.ExprStmt(expr=expr, span=self._span(start))

    def _if(self) -> A.If:
        start = self.expect("if").pos
        self.expect("(")
        cond = self._expression()
        self.expect(")")
        then = self._statement()
        otherwise = self._statement() if self.accept("else") else None
        return A.If(cond=cond, then=then, otherwise=otherwise, span=self._span(start))

    def _while(self) -> A.While:
        start = self.expect("while").pos
        self.expect("(")
        cond = self._expression()
        self.expect(")")
        body = self._statement()
        return A.While(cond=cond, body=body, span=self._span(start))

    def _do_while(self) -> A.DoWhile:
        start = self.expect("do").pos
        body = self._statement()
        self.expect("while")
        self.expect("(")
        cond = self._expression()
        self.expect(")")
        self.expect(";")
        return A.DoWhile(body=body, cond=cond, span=self._span(start))

    def _for(self) -> A.For:
        start = self.expect("for").pos
        self.expect("(")
        self._push_scope()
        init: A.Node | None = None
        if not self.at(";"):
            if self._starts_declaration():
                dstart = self.tok.pos
                storage, base = self._declaration_specifiers()
                name, ctype, _ = self._declarator(base)
                init = self._finish_declaration(dstart, storage, name, ctype)
            else:
                expr = self._expression()
                self.expect(";")
                init = A.ExprStmt(expr=expr, span=expr.span)
        else:
            self.advance()
        cond = None if self.at(";") else self._expression()
        self.expect(";")
        step = None if self.at(")") else self._expression()
        self.expect(")")
        body = self._statement()
        self._pop_scope()
        return A.For(init=init, cond=cond, step=step, body=body, span=self._span(start))

    def _return(self) -> A.Return:
        start = self.expect("return").pos
        value = None if self.at(";") else self._expression()
        self.expect(";")
        return A.Return(value=value, span=self._span(start))

    def _switch(self) -> A.Switch:
        start = self.expect("switch").pos
        self.expect("(")
        cond = self._expression()
        self.expect(")")
        body = self._statement()
        return A.Switch(cond=cond, body=body, span=self._span(start))

    # -- expressions ----------------------------------------------------------

    def _expression(self) -> A.Expr:
        start = self.tok.pos
        expr = self._assignment()
        if not self.at(","):
            return expr
        items = [expr]
        while self.accept(","):
            items.append(self._assignment())
        return A.Comma(items=items, span=self._span(start))

    def _assignment(self) -> A.Expr:
        start = self.tok.pos
        lhs = self._conditional()
        if self.tok.kind == "op" and self.tok.text in _ASSIGN_OPS:
            op = self.advance().text
            rhs = self._assignment()
            return A.Assign(op=op, target=lhs, value=rhs, span=self._span(start))
        return lhs

    def _conditional(self) -> A.Expr:
        start = self.tok.pos
        cond = self._binary(0)
        if not self.accept("?"):
            return cond
        then = self._expression()
        self.expect(":")
        otherwise = self._conditional()
        return A.Cond(cond=cond, then=then, otherwise=otherwise, span=self._span(start))

    _BINARY_LEVELS: list[frozenset[str]] = [
        frozenset({"||"}),
        frozenset({"&&"}),
        frozenset({"|"}),
        frozenset({"^"}),
        frozenset({"&"}),
        frozenset({"==", "!="}),
        frozenset({"<", ">", "<=", ">="}),
        frozenset({"<<", ">>"}),
        frozenset({"+", "-"}),
        frozenset({"*", "/", "%"}),
    ]

    def _binary(self, level: int) -> A.Expr:
        if level >= len(self._BINARY_LEVELS):
            return self._cast_expr()
        start = self.tok.pos
        left = self._binary(level + 1)
        ops = self._BINARY_LEVELS[level]
        while self.tok.kind == "op" and self.tok.text in ops:
            op = self.advance().text
            right = self._binary(level + 1)
            left = A.Binary(op=op, left=left, right=right, span=self._span(start))
        return left

    def _is_type_start(self, tok: Token) -> bool:
        if tok.kind == "keyword":
            return tok.text in _TYPE_SPECIFIER_KEYWORDS | _QUALIFIER_KEYWORDS
        return tok.kind == "ident" and self.scope.lookup_typedef(tok.text) is not None

    def _cast_expr(self) -> A.Expr:
        if self.at("(") and self._is_type_start(self.peek()):
            start = self.advance().pos
            to_type = self._type_name()
            self.expect(")")
            operand = self._cast_expr()
            return A.Cast(to_type=to_type, operand=operand, span=self._span(start))
        return self._unary()

    def _unary(self) -> A.Expr:
        start = self.tok.pos
        if self.tok.kind == "op" and self.tok.text in ("-", "+", "!", "~", "*", "&", "++", "--"):
            op = self.advance().text
            operand = self._cast_expr() if op in ("-", "+", "!", "~", "*", "&") else self._unary()
            return A.Unary(op=op, operand=operand, span=self._span(start))
        if self.at("sizeof"):
            self.advance()
            if self.at("(") and self._is_type_start(self.peek()):
                self.advance()
                of_type = self._type_name()
                self.expect(")")
                return A.SizeofType(of_type=of_type, span=self._span(start))
            operand = self._unary()
            return A.SizeofExpr(operand=operand, span=self._span(start))
        return self._postfix()

    def _postfix(self) -> A.Expr:
        start = self.tok.pos
        expr = self._primary()
        while True:
            if self.at("["):
                self.advance()
                index = self._expression()
                self.expect("]")
                expr = A.Index(base=expr, index=index, span=self._span(start))
            elif self.at("("):
                self.advance()
                args: list[A.Expr] = []
                while not self.at(")"):
                    args.append(self._assignment())
                    if not self.accept(","):
                        break
                self.expect(")")
                expr = A.Call(func=expr, args=args, span=self._span(start))
            elif self.at("."):
                self.advance()
                name = self.advance().text
                expr = A.Member(base=expr, name=name, arrow=False, span=self._span(start))
            elif self.at("->"):
                self.advance()
                name = self.advance().text
                expr = A.Member(base=expr, name=name, arrow=True, span=self._span(start))
            elif self.at("++") or self.at("--"):
                op = self.advance().text
                expr = A.Postfix(op=op, operand=expr, span=self._span(start))
            else:
                return expr

    def _primary(self) -> A.Expr:
        tok = self.tok
        start = tok.pos
        if tok.kind == "int":
            self.advance()
            return A.IntLit(value=tok.value, span=self._span(start))
        if tok.kind == "float":
            self.advance()
            return A.FloatLit(value=tok.value, span=self._span(start))
        if tok.kind == "char":
            self.advance()
            return A.CharLit(value=tok.value, span=self._span(start))
        if tok.kind == "string":
            self.advance()
            return A.StringLit(value=tok.value, span=self._span(start))
        if tok.kind == "ident":
            self.advance()
            enum_val = self.scope.lookup_enum(tok.text)
            if enum_val is not None:
                return A.IntLit(value=enum_val, span=self._span(start))
            return A.Ident(name=tok.text, span=self._span(start))
        if self.at("("):
            self.advance()
            expr = self._expression()
            self.expect(")")
            return expr
        raise ParseError(f"unexpected token {tok.text!r}", tok.pos, self.source)


def parse(source: str) -> A.TranslationUnit:
    """Parse a full translation unit."""
    from ..obs import runtime as obs_runtime
    tracer = obs_runtime.get_tracer()
    if not tracer.enabled:
        return Parser(source).parse()
    # Lexing happens in Parser.__init__; time the two stages apart.
    with tracer.span("cfront.lex") as sp:
        parser = Parser(source)
        sp.set(tokens=len(parser.tokens), chars=len(source))
    with tracer.span("cfront.parse", tokens=len(parser.tokens)) as sp:
        unit = parser.parse()
        sp.set(items=len(unit.items))
    return unit


def parse_expression(source: str) -> A.Expr:
    """Parse a single expression (handy in tests and the REPL examples)."""
    parser = Parser(source)
    expr = parser._expression()
    if parser.tok.kind != "eof":
        raise ParseError("trailing input after expression", parser.tok.pos, source)
    return expr


def _combine_int_specifiers(seen: list[str], pos: int, source: str) -> CType:
    words = set(seen)
    signed = "unsigned" not in words
    words -= {"signed", "unsigned"}
    if words == {"void"}:
        return VOID
    if words == {"float"}:
        return FLOAT
    if words <= {"double", "long"} and "double" in words:
        return DOUBLE
    if words == {"char"}:
        return IntType("char", signed)
    if words <= {"short", "int"} and "short" in words:
        return IntType("short", signed)
    if words <= {"long", "int"} and "long" in words:
        return IntType("long", signed)
    if words <= {"int"} or not words:
        return IntType("int", signed)
    raise ParseError(f"invalid type specifier combination: {' '.join(seen)}", pos, source)
