"""Lexically scoped symbol tables shared by the typechecker, the
annotator (which needs to know which identifiers are pointer variables)
and the compiler (which needs storage classes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ctypes import CType


@dataclass
class Symbol:
    name: str
    ctype: CType
    kind: str = "var"  # 'var' | 'param' | 'func' | 'global'
    storage: str | None = None  # 'static' | 'extern' | None
    is_temp: bool = False  # compiler-introduced temporary

    @property
    def is_pointer_var(self) -> bool:
        return self.ctype.is_pointer


class SymbolTable:
    """A chain of scopes.  ``push``/``pop`` bracket blocks and functions."""

    def __init__(self):
        self._scopes: list[dict[str, Symbol]] = [{}]

    def push(self) -> None:
        self._scopes.append({})

    def pop(self) -> None:
        if len(self._scopes) == 1:
            raise RuntimeError("cannot pop the global scope")
        self._scopes.pop()

    @property
    def depth(self) -> int:
        return len(self._scopes)

    def define(self, symbol: Symbol) -> Symbol:
        self._scopes[-1][symbol.name] = symbol
        return symbol

    def define_global(self, symbol: Symbol) -> Symbol:
        self._scopes[0][symbol.name] = symbol
        return symbol

    def lookup(self, name: str) -> Symbol | None:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        return None

    def lookup_local(self, name: str) -> Symbol | None:
        return self._scopes[-1].get(name)

    def globals(self) -> dict[str, Symbol]:
        return dict(self._scopes[0])
