"""C frontend substrate: lexer, mini preprocessor, parser, type checker,
and unparser for the ANSI C subset used throughout the reproduction."""

from . import cast
from .cpp import Preprocessor, preprocess
from .ctypes import (
    Array, CHAR, CHAR_PTR, CType, DOUBLE, FLOAT, Function, INT, IntType,
    Pointer, Struct, UINT, VOID, VOID_PTR, WORD_SIZE, may_hold_heap_pointer,
)
from .errors import CFrontError, Diagnostic, LexError, ParseError, SourceSpan, TypeError_
from .lexer import Token, tokenize
from .parser import Parser, parse, parse_expression
from .symbols import Symbol, SymbolTable
from .typecheck import TypeChecker, typecheck
from .unparse import Unparser, unparse, unparse_type

__all__ = [
    "cast", "Preprocessor", "preprocess",
    "Array", "CHAR", "CHAR_PTR", "CType", "DOUBLE", "FLOAT", "Function",
    "INT", "IntType", "Pointer", "Struct", "UINT", "VOID", "VOID_PTR",
    "WORD_SIZE", "may_hold_heap_pointer",
    "CFrontError", "Diagnostic", "LexError", "ParseError", "SourceSpan",
    "TypeError_", "Token", "tokenize", "Parser", "parse", "parse_expression",
    "Symbol", "SymbolTable", "TypeChecker", "typecheck",
    "Unparser", "unparse", "unparse_type",
]
