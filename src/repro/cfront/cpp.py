"""A miniature C preprocessor.

The paper's tool runs *between* the normal C preprocessor and the
compiler ("in this way arbitrary macros are handled correctly").  We
mirror that pipeline: workloads may use ``#define``/``#ifdef``/
``#include``, and :func:`preprocess` expands them before the annotator
ever sees the text.

Supported: object-like and function-like ``#define`` (no ``#``/``##``
operators), ``#undef``, ``#ifdef``/``#ifndef``/``#else``/``#endif``,
``#if`` with integer constant expressions over ``defined(...)``, and
``#include "file"`` resolved against ``include_dirs``.
"""

from __future__ import annotations

import os
import re

from .errors import CFrontError

_DIRECTIVE_RE = re.compile(r"^\s*#\s*(\w+)\s*(.*?)\s*$")
_IDENT_RE = re.compile(r"[A-Za-z_]\w*")


class CppError(CFrontError):
    pass


class Macro:
    def __init__(self, name: str, params: list[str] | None, body: str):
        self.name = name
        self.params = params  # None for object-like macros
        self.body = body


class Preprocessor:
    def __init__(self, include_dirs: list[str] | None = None,
                 predefined: dict[str, str] | None = None):
        self.include_dirs = list(include_dirs or [])
        self.macros: dict[str, Macro] = {}
        for name, body in (predefined or {}).items():
            self.macros[name] = Macro(name, None, body)

    # -- public -----------------------------------------------------------

    def preprocess(self, source: str, filename: str = "<string>") -> str:
        lines = self._join_continuations(source)
        out: list[str] = []
        # Condition stack: each entry is (taking, taken_any) for #if nesting.
        cond: list[list[bool]] = []

        def active() -> bool:
            return all(frame[0] for frame in cond)

        for line in lines:
            m = _DIRECTIVE_RE.match(line)
            if m is None:
                if active():
                    out.append(self._expand_line(line))
                else:
                    out.append("")
                continue
            directive, rest = m.group(1), m.group(2)
            if directive in ("ifdef", "ifndef"):
                name = rest.split()[0] if rest.split() else ""
                defined = name in self.macros
                take = defined if directive == "ifdef" else not defined
                cond.append([take and active(), take])
            elif directive == "if":
                take = bool(self._eval_condition(rest)) if active() else False
                cond.append([take and active(), take])
            elif directive == "elif":
                if not cond:
                    raise CppError("#elif without #if")
                frame = cond[-1]
                if frame[1]:
                    frame[0] = False
                else:
                    take = bool(self._eval_condition(rest))
                    frame[0] = take
                    frame[1] = take
            elif directive == "else":
                if not cond:
                    raise CppError("#else without #if")
                frame = cond[-1]
                frame[0] = (not frame[1]) and all(f[0] for f in cond[:-1])
                frame[1] = True
            elif directive == "endif":
                if not cond:
                    raise CppError("#endif without #if")
                cond.pop()
            elif not active():
                pass
            elif directive == "define":
                self._define(rest)
            elif directive == "undef":
                self.macros.pop(rest.split()[0], None)
            elif directive == "include":
                out.append(self._include(rest, filename))
            elif directive in ("pragma", "error", "line"):
                if directive == "error":
                    raise CppError(f"#error {rest}")
            else:
                raise CppError(f"unknown directive #{directive}")
            if directive not in ("include",):
                out.append("")  # keep line numbers roughly stable
        if cond:
            raise CppError("unterminated #if block")
        return "\n".join(out)

    # -- internals ------------------------------------------------------------

    @staticmethod
    def _join_continuations(source: str) -> list[str]:
        lines: list[str] = []
        pending = ""
        for raw in source.split("\n"):
            if raw.endswith("\\"):
                pending += raw[:-1] + " "
            else:
                lines.append(pending + raw)
                pending = ""
        if pending:
            lines.append(pending)
        return lines

    def _define(self, rest: str) -> None:
        m = _IDENT_RE.match(rest)
        if m is None:
            raise CppError(f"malformed #define {rest!r}")
        name = m.group(0)
        after = rest[m.end():]
        if after.startswith("("):
            close = after.index(")")
            params = [p.strip() for p in after[1:close].split(",") if p.strip()]
            body = after[close + 1:].strip()
            self.macros[name] = Macro(name, params, body)
        else:
            self.macros[name] = Macro(name, None, after.strip())

    def _include(self, rest: str, from_file: str) -> str:
        m = re.match(r'^[<"]([^>"]+)[>"]', rest.strip())
        if m is None:
            raise CppError(f"malformed #include {rest!r}")
        target = m.group(1)
        search = list(self.include_dirs)
        if from_file != "<string>":
            search.insert(0, os.path.dirname(os.path.abspath(from_file)))
        for directory in search:
            path = os.path.join(directory, target)
            if os.path.exists(path):
                with open(path) as fh:
                    return self.preprocess(fh.read(), path)
        raise CppError(f"include file not found: {target}")

    def _eval_condition(self, text: str) -> int:
        text = re.sub(r"defined\s*\(\s*(\w+)\s*\)",
                      lambda m: "1" if m.group(1) in self.macros else "0", text)
        text = re.sub(r"defined\s+(\w+)",
                      lambda m: "1" if m.group(1) in self.macros else "0", text)
        text = self._expand_line(text)
        text = _IDENT_RE.sub("0", text)  # remaining identifiers are 0
        text = text.replace("&&", " and ").replace("||", " or ").replace("!", " not ")
        text = text.replace(" not =", " !=")  # undo damage to '!='
        try:
            return int(eval(text, {"__builtins__": {}}, {}))  # noqa: S307 - sanitized arithmetic
        except Exception as exc:
            raise CppError(f"cannot evaluate #if condition {text!r}: {exc}") from exc

    def _expand_line(self, line: str, depth: int = 0) -> str:
        if depth > 32:
            raise CppError("macro expansion too deep (recursive macro?)")
        out: list[str] = []
        i = 0
        n = len(line)
        while i < n:
            ch = line[i]
            if ch == '"' or ch == "'":
                j = i + 1
                while j < n and line[j] != ch:
                    j += 2 if line[j] == "\\" else 1
                out.append(line[i : j + 1])
                i = j + 1
                continue
            if line.startswith("//", i):
                out.append(line[i:])
                break
            m = _IDENT_RE.match(line, i)
            if m is None:
                out.append(ch)
                i += 1
                continue
            name = m.group(0)
            i = m.end()
            macro = self.macros.get(name)
            if macro is None:
                out.append(name)
                continue
            if macro.params is None:
                out.append(self._expand_line(macro.body, depth + 1))
                continue
            # function-like: need a '(' next (possibly after spaces)
            j = i
            while j < n and line[j] in " \t":
                j += 1
            if j >= n or line[j] != "(":
                out.append(name)
                continue
            args, i = self._parse_args(line, j)
            if len(args) != len(macro.params) and not (len(macro.params) == 0 and args == [""]):
                raise CppError(
                    f"macro {name} expects {len(macro.params)} args, got {len(args)}")
            body = self._substitute(macro.body, dict(zip(macro.params, args)))
            out.append(self._expand_line(body, depth + 1))
        return "".join(out)

    @staticmethod
    def _parse_args(line: str, open_paren: int) -> tuple[list[str], int]:
        depth = 0
        args: list[str] = []
        current: list[str] = []
        i = open_paren
        while i < len(line):
            ch = line[i]
            if ch in "\"'":
                j = i + 1
                while j < len(line) and line[j] != ch:
                    j += 2 if line[j] == "\\" else 1
                current.append(line[i : j + 1])
                i = j + 1
                continue
            if ch == "(":
                depth += 1
                if depth > 1:
                    current.append(ch)
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    args.append("".join(current).strip())
                    return args, i + 1
                current.append(ch)
            elif ch == "," and depth == 1:
                args.append("".join(current).strip())
                current = []
            else:
                current.append(ch)
            i += 1
        raise CppError("unterminated macro argument list")

    @staticmethod
    def _substitute(body: str, bindings: dict[str, str]) -> str:
        def repl(m: re.Match) -> str:
            return bindings.get(m.group(0), m.group(0))

        return _IDENT_RE.sub(repl, body)


def preprocess(source: str, include_dirs: list[str] | None = None,
               predefined: dict[str, str] | None = None,
               filename: str = "<string>") -> str:
    """Run the mini preprocessor over ``source`` and return plain C text."""
    from ..obs import runtime as obs_runtime
    tracer = obs_runtime.get_tracer()
    if not tracer.enabled:
        return Preprocessor(include_dirs, predefined).preprocess(source, filename)
    with tracer.span("cfront.cpp", file=filename) as sp:
        out = Preprocessor(include_dirs, predefined).preprocess(source, filename)
        sp.set(lines_in=source.count("\n") + 1, lines_out=out.count("\n") + 1)
    return out
