"""Diagnostics for the C frontend.

Every error carries the character offset into the original source text,
because the annotator (see :mod:`repro.core.edits`) keys its insertions
and deletions by character position, exactly as the paper's preprocessor
does.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourceSpan:
    """Half-open character range [start, end) in the original source."""

    start: int
    end: int

    def merge(self, other: "SourceSpan") -> "SourceSpan":
        return SourceSpan(min(self.start, other.start), max(self.end, other.end))


class CFrontError(Exception):
    """Base class for all frontend failures."""

    def __init__(self, message: str, pos: int = -1, source: str | None = None):
        self.message = message
        self.pos = pos
        if source is not None and pos >= 0:
            line = source.count("\n", 0, pos) + 1
            col = pos - (source.rfind("\n", 0, pos) + 1) + 1
            message = f"line {line}, col {col}: {message}"
        super().__init__(message)


class LexError(CFrontError):
    """Raised for unrecognizable input characters or unterminated tokens."""


class ParseError(CFrontError):
    """Raised for syntactically invalid input."""


class TypeError_(CFrontError):
    """Raised for ill-typed programs (named to avoid shadowing builtins)."""


@dataclass(frozen=True)
class Diagnostic:
    """A non-fatal warning, e.g. from the source-safety checker."""

    pos: int
    message: str
    category: str = "warning"

    def render(self, source: str) -> str:
        line = source.count("\n", 0, self.pos) + 1
        return f"{self.category}: line {line}: {self.message}"
