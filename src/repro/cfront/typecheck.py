"""Type annotation of parsed translation units.

Fills in ``ctype`` and ``is_lvalue`` on every :class:`repro.cfront.cast.Expr`.
The annotator (``repro.core``) depends on these to decide which
expressions are pointer-valued, and the compiler depends on them for
address arithmetic scaling.

The checker is deliberately permissive where ANSI C is lenient in
practice (implicit function declarations get ``int()``, any pointer
converts to any other pointer with at most a diagnostic) — the paper's
tool partially type-checks, and its interesting diagnostics live in
:mod:`repro.core.sourcecheck`.
"""

from __future__ import annotations

from . import cast as A
from .ctypes import (
    Array, CHAR, CHAR_PTR, CType, DOUBLE, Function, INT, IntType, Pointer,
    Struct, UINT, ULONG, VOID, VOID_PTR, FloatType,
)
from .errors import TypeError_
from .symbols import Symbol, SymbolTable


# Known library prototypes, pre-declared like a system header would.
# (The paper's tool sees gc.h and the C library headers; without these,
# allocator results would type as int and every cast of them would be
# flagged as an int-to-pointer conversion.)
_LIBRARY_PROTOTYPES: dict[str, Function] = {
    "GC_malloc": Function(VOID_PTR, (UINT,)),
    "GC_malloc_atomic": Function(VOID_PTR, (UINT,)),
    "GC_realloc": Function(VOID_PTR, (VOID_PTR, UINT)),
    "GC_base": Function(VOID_PTR, (VOID_PTR,)),
    "GC_same_obj": Function(VOID_PTR, (VOID_PTR, VOID_PTR)),
    "malloc": Function(VOID_PTR, (UINT,)),
    "calloc": Function(VOID_PTR, (UINT, UINT)),
    "realloc": Function(VOID_PTR, (VOID_PTR, UINT)),
    "strcpy": Function(CHAR_PTR, (CHAR_PTR, CHAR_PTR)),
    "strcat": Function(CHAR_PTR, (CHAR_PTR, CHAR_PTR)),
    "strchr": Function(CHAR_PTR, (CHAR_PTR, INT)),
    "memcpy": Function(VOID_PTR, (VOID_PTR, VOID_PTR, UINT)),
    "memmove": Function(VOID_PTR, (VOID_PTR, VOID_PTR, UINT)),
    "memset": Function(VOID_PTR, (VOID_PTR, INT, UINT)),
}


class TypeChecker:
    def __init__(self, unit: A.TranslationUnit):
        self.unit = unit
        self.source = unit.source
        self.symbols = SymbolTable()
        self.current_function: A.FuncDef | None = None
        for name, proto in _LIBRARY_PROTOTYPES.items():
            self.symbols.define(Symbol(name, proto, "func"))

    # -- entry --------------------------------------------------------------

    def check(self) -> SymbolTable:
        for item in self.unit.items:
            if isinstance(item, A.Decl):
                self._check_decl(item, is_global=True)
            elif isinstance(item, A.FuncDef):
                self._check_funcdef(item)
        return self.symbols

    # -- declarations ---------------------------------------------------------

    def _check_decl(self, decl: A.Decl, is_global: bool) -> None:
        if decl.storage == "typedef":
            return
        for d in decl.declarators:
            kind = "global" if is_global else "var"
            if d.ctype.is_function:
                kind = "func"
            self.symbols.define(Symbol(d.name, d.ctype, kind, decl.storage))
            if d.init is not None:
                self._check_init(d.init, d.ctype)

    def _check_init(self, init: A.Node, target: CType) -> None:
        if isinstance(init, A.InitList):
            if isinstance(target, Array):
                for item in init.items:
                    self._check_init(item, target.element)
            elif isinstance(target, Struct):
                for item, fld in zip(init.items, target.fields):
                    self._check_init(item, fld.ctype)
            else:
                for item in init.items:
                    self._check_init(item, target)
            return
        assert isinstance(init, A.Expr)
        self.expr(init)

    def _check_funcdef(self, fn: A.FuncDef) -> None:
        assert isinstance(fn.ctype, Function)
        self.symbols.define(Symbol(fn.name, fn.ctype, "func", fn.storage))
        self.symbols.push()
        for param in fn.params:
            self.symbols.define(Symbol(param.name, param.ctype, "param"))
        self.current_function = fn
        self._stmt(fn.body)
        self.current_function = None
        self.symbols.pop()

    # -- statements -------------------------------------------------------------

    def _stmt(self, stmt: A.Stmt) -> None:
        if isinstance(stmt, A.Block):
            self.symbols.push()
            for item in stmt.items:
                if isinstance(item, A.Decl):
                    self._check_decl(item, is_global=False)
                else:
                    self._stmt(item)  # type: ignore[arg-type]
            self.symbols.pop()
        elif isinstance(stmt, A.ExprStmt):
            if stmt.expr is not None:
                self.expr(stmt.expr)
        elif isinstance(stmt, A.If):
            self.expr(stmt.cond)
            self._stmt(stmt.then)
            if stmt.otherwise is not None:
                self._stmt(stmt.otherwise)
        elif isinstance(stmt, A.While):
            self.expr(stmt.cond)
            self._stmt(stmt.body)
        elif isinstance(stmt, A.DoWhile):
            self._stmt(stmt.body)
            self.expr(stmt.cond)
        elif isinstance(stmt, A.For):
            self.symbols.push()
            if isinstance(stmt.init, A.Decl):
                self._check_decl(stmt.init, is_global=False)
            elif isinstance(stmt.init, A.ExprStmt) and stmt.init.expr is not None:
                self.expr(stmt.init.expr)
            if stmt.cond is not None:
                self.expr(stmt.cond)
            if stmt.step is not None:
                self.expr(stmt.step)
            self._stmt(stmt.body)
            self.symbols.pop()
        elif isinstance(stmt, A.Return):
            if stmt.value is not None:
                self.expr(stmt.value)
        elif isinstance(stmt, A.Switch):
            self.expr(stmt.cond)
            self._stmt(stmt.body)
        elif isinstance(stmt, (A.Case, A.Default)):
            if isinstance(stmt, A.Case):
                self.expr(stmt.value)
            if stmt.body is not None:
                self._stmt(stmt.body)
        elif isinstance(stmt, A.Label):
            if stmt.body is not None:
                self._stmt(stmt.body)
        elif isinstance(stmt, (A.Break, A.Continue, A.Goto, A.Decl)):
            if isinstance(stmt, A.Decl):
                self._check_decl(stmt, is_global=False)
        else:
            raise TypeError_(f"unhandled statement {type(stmt).__name__}",
                             stmt.span.start, self.source)

    # -- expressions ------------------------------------------------------------

    def expr(self, e: A.Expr) -> CType:
        """Annotate ``e`` (recursively) and return its type."""
        ctype = self._expr(e)
        e.ctype = ctype
        return ctype

    def _rvalue(self, e: A.Expr) -> CType:
        """Type of ``e`` as used in a value context (arrays decay)."""
        return self.expr(e).decay()

    def _expr(self, e: A.Expr) -> CType:
        if isinstance(e, A.IntLit):
            return INT
        if isinstance(e, A.FloatLit):
            return DOUBLE
        if isinstance(e, A.CharLit):
            return INT  # C: character constants have type int
        if isinstance(e, A.StringLit):
            e.is_lvalue = True
            return Array(CHAR, len(e.value) + 1)
        if isinstance(e, A.Ident):
            return self._ident(e)
        if isinstance(e, A.Unary):
            return self._unary(e)
        if isinstance(e, A.Postfix):
            t = self._rvalue(e.operand)
            self._require_lvalue(e.operand)
            return t
        if isinstance(e, A.Binary):
            return self._binary(e)
        if isinstance(e, A.Assign):
            return self._assign(e)
        if isinstance(e, A.Cond):
            self._rvalue(e.cond)
            then = self._rvalue(e.then)
            other = self._rvalue(e.otherwise)
            if then.is_pointer:
                return then
            if other.is_pointer:
                return other
            return self._usual(then, other)
        if isinstance(e, A.Comma):
            result: CType = VOID
            for item in e.items:
                result = self._rvalue(item)
            return result
        if isinstance(e, A.Call):
            return self._call(e)
        if isinstance(e, A.Index):
            return self._index(e)
        if isinstance(e, A.Member):
            return self._member(e)
        if isinstance(e, A.Cast):
            self._rvalue(e.operand)
            return e.to_type
        if isinstance(e, A.SizeofExpr):
            self.expr(e.operand)
            return ULONG
        if isinstance(e, A.SizeofType):
            return ULONG
        if isinstance(e, A.KeepLive):
            value = self._rvalue(e.value)
            if e.base is not None:
                self._rvalue(e.base)
            return value
        raise TypeError_(f"unhandled expression {type(e).__name__}",
                         e.span.start, self.source)

    def _ident(self, e: A.Ident) -> CType:
        sym = self.symbols.lookup(e.name)
        if sym is None:
            # C89 implicit declaration: assume int(...) and remember it.
            fn = Function(INT, (), varargs=True)
            self.symbols.define_global(Symbol(e.name, fn, "func"))
            return fn
        if not sym.ctype.is_function:
            e.is_lvalue = True
        return sym.ctype

    def _unary(self, e: A.Unary) -> CType:
        op = e.op
        if op == "*":
            t = self._rvalue(e.operand)
            if not t.is_pointer:
                raise TypeError_(f"cannot dereference non-pointer type {t}",
                                 e.span.start, self.source)
            e.is_lvalue = True
            return t.target  # type: ignore[union-attr]
        if op == "&":
            t = self.expr(e.operand)
            self._require_lvalue(e.operand)
            return Pointer(t if not isinstance(t, Array) else t)
        if op in ("++", "--"):
            t = self._rvalue(e.operand)
            self._require_lvalue(e.operand)
            return t
        if op == "!":
            self._rvalue(e.operand)
            return INT
        if op == "~":
            return self._promote(self._rvalue(e.operand))
        # unary +/-
        return self._promote(self._rvalue(e.operand))

    def _binary(self, e: A.Binary) -> CType:
        op = e.op
        left = self._rvalue(e.left)
        right = self._rvalue(e.right)
        if op in ("&&", "||", "==", "!=", "<", ">", "<=", ">="):
            return INT
        if op == "+":
            if left.is_pointer and right.is_integer:
                return left
            if right.is_pointer and left.is_integer:
                return right
            return self._usual(left, right)
        if op == "-":
            if left.is_pointer and right.is_pointer:
                return INT  # ptrdiff_t
            if left.is_pointer and right.is_integer:
                return left
            return self._usual(left, right)
        if op in ("<<", ">>"):
            return self._promote(left)
        return self._usual(left, right)

    def _assign(self, e: A.Assign) -> CType:
        target = self.expr(e.target)
        self._require_lvalue(e.target)
        self._rvalue(e.value)
        return target.decay() if isinstance(target, Array) else target

    def _call(self, e: A.Call) -> CType:
        fn_type = self._rvalue(e.func)
        for arg in e.args:
            self._rvalue(arg)
        if isinstance(fn_type, Pointer) and fn_type.target.is_function:
            fn_type = fn_type.target
        if isinstance(fn_type, Function):
            return fn_type.ret
        raise TypeError_(f"called object has non-function type {fn_type}",
                         e.span.start, self.source)

    def _index(self, e: A.Index) -> CType:
        base = self._rvalue(e.base)
        index = self._rvalue(e.index)
        if base.is_pointer and index.is_integer:
            e.is_lvalue = True
            return base.target  # type: ignore[union-attr]
        if index.is_pointer and base.is_integer:  # the i[p] spelling
            e.is_lvalue = True
            return index.target  # type: ignore[union-attr]
        raise TypeError_(f"cannot index {base} with {index}", e.span.start, self.source)

    def _member(self, e: A.Member) -> CType:
        base = self.expr(e.base)
        if e.arrow:
            base = base.decay()
            if not base.is_pointer:
                raise TypeError_(f"-> applied to non-pointer {base}",
                                 e.span.start, self.source)
            struct = base.target  # type: ignore[union-attr]
        else:
            struct = base
        if not isinstance(struct, Struct):
            raise TypeError_(f"member access on non-struct {struct}",
                             e.span.start, self.source)
        fld = struct.field(e.name)
        if fld is None:
            raise TypeError_(f"no field {e.name!r} in {struct}", e.span.start, self.source)
        e.is_lvalue = True
        return fld.ctype

    # -- helpers -----------------------------------------------------------------

    def _require_lvalue(self, e: A.Expr) -> None:
        if not e.is_lvalue:
            raise TypeError_("expression is not an lvalue", e.span.start, self.source)

    @staticmethod
    def _promote(t: CType) -> CType:
        if isinstance(t, IntType) and t.size < INT.size:
            return INT
        return t

    def _usual(self, left: CType, right: CType) -> CType:
        """Usual arithmetic conversions, simplified for ILP32."""
        if isinstance(left, FloatType) or isinstance(right, FloatType):
            return DOUBLE
        left, right = self._promote(left), self._promote(right)
        if isinstance(left, IntType) and isinstance(right, IntType):
            if not left.signed or not right.signed:
                return UINT
            return left
        # Pointers in arithmetic contexts slip through to here only for
        # questionable code; treat the result as the pointer type.
        if left.is_pointer:
            return left
        return right


def typecheck(unit: A.TranslationUnit) -> SymbolTable:
    """Annotate every expression in ``unit``; return the symbol table."""
    from ..obs import runtime as obs_runtime
    tracer = obs_runtime.get_tracer()
    if not tracer.enabled:
        return TypeChecker(unit).check()
    with tracer.span("cfront.typecheck", items=len(unit.items)):
        return TypeChecker(unit).check()
